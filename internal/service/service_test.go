package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a Server with test-friendly defaults plus the
// caller's overrides, mounted on an httptest.Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Version == "" {
		cfg.Version = "test"
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Minute
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// decodeStatus parses a JobStatus response.
func decodeStatus(t *testing.T, data []byte) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("bad status body %s: %v", data, err)
	}
	return st
}

// waitTerminal polls a job's status endpoint until it reaches a terminal
// state.
func waitTerminal(t *testing.T, base, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, readBody(t, resp))
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, st.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, Queue: 7})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %q, want 200", resp.StatusCode, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueCapacity != 7 || h.QueueDepth != 0 {
		t.Errorf("healthz = %+v, want ok with 3 workers, capacity 7, depth 0", h)
	}
	if h.MeanJobSeconds != 0 {
		t.Errorf("idle server reports mean job seconds %v", h.MeanJobSeconds)
	}
}

func TestExperimentsList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/api/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct{ ID, Title, Bench string }
	if err := json.Unmarshal(readBody(t, resp), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 19 {
		t.Fatalf("%d experiments listed, want 19", len(list))
	}
	if list[0].ID != "E1" || list[18].ID != "E19" {
		t.Errorf("unexpected ordering: %s..%s", list[0].ID, list[16].ID)
	}
}

// Async happy path: submit, poll to done, fetch the result in all three
// formats, and confirm the JSON round-trips through the wire types.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || !strings.HasSuffix(sub.ResultURL, "/result") {
		t.Fatalf("bad submit response: %+v", sub)
	}

	st := waitTerminal(t, ts.URL, sub.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Cached || st.Source != "computed" {
		t.Errorf("first run reports cached=%v source=%q", st.Cached, st.Source)
	}

	resp, err := http.Get(ts.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, raw)
	}
	res, err := decodeResult(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exp != "E1" || len(res.Tables) == 0 {
		t.Fatalf("decoded result %s with %d tables", res.Exp, len(res.Tables))
	}

	resp, err = http.Get(ts.URL + sub.ResultURL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, resp))
	if !strings.Contains(text, "### E1") || !strings.Contains(text, res.Tables[0].Title) {
		t.Errorf("text rendering missing header or title:\n%s", text)
	}

	resp, err = http.Get(ts.URL + sub.ResultURL + "?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	csvOut := string(readBody(t, resp))
	if !strings.HasPrefix(csvOut, strings.Join(res.Tables[0].Cols, ",")) {
		t.Errorf("csv rendering missing header row:\n%.200s", csvOut)
	}

	resp, err = http.Get(ts.URL + sub.ResultURL + "?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format: %d, want 400", resp.StatusCode)
	}

	// The jobs listing includes the finished job.
	resp, err = http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var all []JobStatus
	if err := json.Unmarshal(readBody(t, resp), &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != sub.ID {
		t.Errorf("job listing = %+v, want the one job", all)
	}
}

// Error paths on submission: malformed body, unknown fields, missing and
// unknown experiment, bad presets, bad storage, negative timeout.
func TestSubmitErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"exp":`, http.StatusBadRequest},
		{"unknown field", `{"exp":"E1","turbo":true}`, http.StatusBadRequest},
		{"trailing garbage", `{"exp":"E1"} {"exp":"E2"}`, http.StatusBadRequest},
		{"missing exp", `{"quick":true}`, http.StatusBadRequest},
		{"unknown experiment", `{"exp":"E99"}`, http.StatusNotFound},
		{"bad net preset", `{"exp":"E1","net":"carrier-pigeon"}`, http.StatusBadRequest},
		{"bad storage", `{"exp":"E1","storage":{"aggregate_gbps":-1}}`, http.StatusBadRequest},
		{"negative timeout", `{"exp":"E1","timeout_sec":-5}`, http.StatusBadRequest},
	}
	for _, endpoint := range []string{"/api/v1/jobs", "/api/v1/run"} {
		for _, c := range cases {
			resp := postJSON(t, ts.URL+endpoint, c.body)
			body := readBody(t, resp)
			if resp.StatusCode != c.want {
				t.Errorf("%s %s: %d %s, want %d", endpoint, c.name, resp.StatusCode, body, c.want)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("%s %s: error body %q lacks an error message", endpoint, c.name, body)
			}
		}
	}
}

func TestUnknownJobRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/api/v1/jobs/nope", "/api/v1/jobs/nope/result", "/api/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
}

// Fetching the result of a still-running job answers 409 with the state.
func TestResultBeforeDone(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Occupy the lone worker with a full-scale E2 (several seconds), then
	// ask for its result immediately.
	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E2","seed":101}`)
	var sub submitResponse
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + sub.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of unfinished job: %d %s, want 409", resp.StatusCode, body)
	}
	s.Close() // cancel the sweep rather than waiting it out
}

// A full queue sheds load with 429 + Retry-After; capacity frees up once
// the backlog drains.
func TestQueueFullBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	// Worker seized by a long job (full E2), queue holds one more.
	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E2","seed":102}`)
	var first submitResponse
	if err := json.Unmarshal(readBody(t, resp), &first); err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running so the queue slot is free.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/api/v1/jobs/" + first.ID)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, readBody(t, r))
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true,"seed":103}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued job: %d, want 202", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true,"seed":104}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d %s, want 429", resp.StatusCode, body)
	}
	// Retry-After must parse as non-negative integer seconds (RFC 9110
	// delay-seconds) — a float or duration string breaks real clients.
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q does not parse as positive integer seconds", ra)
	}
	// Backpressure must also apply to the synchronous endpoint.
	resp = postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":105}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("sync run over capacity: %d, want 429", resp.StatusCode)
	}
}

// retryAfterSeconds scales with the backlog: a deeper queue advises a
// longer backoff, the clamp bounds both ends, and a server with no latency
// history falls back to the 1-second floor.
func TestRetryAfterTracksQueueDepth(t *testing.T) {
	s := New(Config{Version: "test", Workers: 2, Queue: 8})
	defer s.Close()

	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no history: Retry-After %d, want floor 1", got)
	}

	// Recent jobs took ~2s each; (depth/workers + 1) × 2s.
	for i := 0; i < 10; i++ {
		s.jobLat.Observe(2.0)
	}
	s.queueDepth.Set(0)
	if got := s.retryAfterSeconds(); got != 2 {
		t.Errorf("empty queue: Retry-After %d, want 2", got)
	}
	s.queueDepth.Set(6)
	if got := s.retryAfterSeconds(); got != 8 {
		t.Errorf("depth 6, 2 workers: Retry-After %d, want (6/2+1)*2 = 8", got)
	}
	s.queueDepth.Set(1000) // pathological backlog hits the ceiling
	if got := s.retryAfterSeconds(); got != 60 {
		t.Errorf("deep queue: Retry-After %d, want clamp 60", got)
	}
	s.queueDepth.Set(0)
}

// A client that disconnects mid-run cancels its sweep: the job fails with
// a context error long before the full-scale run could have finished.
func TestClientDisconnectCancelsRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/api/v1/run",
		strings.NewReader(`{"exp":"E2","seed":106}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Let the sweep get going, then vanish.
	time.Sleep(300 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned a response")
	}

	// The lone job must reach failed (context.Canceled) promptly — a
	// full-scale E2 takes several seconds, so a fast terminal state proves
	// cancellation propagated into the sweep pool rather than running out.
	listDeadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var all []JobStatus
		if err := json.Unmarshal(readBody(t, resp), &all); err != nil {
			t.Fatal(err)
		}
		if len(all) == 1 && all[0].State.terminal() {
			if all[0].State != StateFailed || !strings.Contains(all[0].Error, "context canceled") {
				t.Fatalf("job ended %s (%s), want failed with context canceled", all[0].State, all[0].Error)
			}
			break
		}
		if time.Now().After(listDeadline) {
			t.Fatal("job never reached a terminal state after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A request timeout caps the run: the job fails with deadline exceeded
// instead of holding a worker for the full sweep.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E2","seed":107,"timeout_sec":0.05}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("timed-out run: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "context deadline exceeded") {
		t.Errorf("error body %s does not name the deadline", body)
	}
}

// Submissions during a drain answer 503 (and healthz flips), while
// completed results stay fetchable.
func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Complete one job first.
	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":108}`)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up run: %d %s", resp.StatusCode, cold)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	for _, endpoint := range []string{"/api/v1/jobs", "/api/v1/run"} {
		resp := postJSON(t, ts.URL+endpoint, `{"exp":"E1","quick":true,"seed":109}`)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: %d %s, want 503", endpoint, resp.StatusCode, body)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Finished results remain readable after the drain.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/j1/result")
	if err != nil {
		t.Fatal(err)
	}
	warm := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, cold) {
		t.Errorf("post-drain result fetch: %d, identical=%v", resp.StatusCode, bytes.Equal(warm, cold))
	}
}

// SSE stream delivers state transitions and always ends on a terminal
// state.
func TestJobEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true,"seed":110}`)
	var sub submitResponse
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	data := readBody(t, resp) // server closes the stream at the terminal event
	events := []JobStatus{}
	for _, line := range strings.Split(string(data), "\n") {
		if payload, ok := strings.CutPrefix(line, "data: "); ok {
			events = append(events, decodeStatus(t, []byte(payload)))
		}
	}
	if len(events) == 0 {
		t.Fatalf("no events in stream:\n%s", data)
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("stream ended on %s, want done (events: %+v)", last.State, events)
	}
	for i := 1; i < len(events); i++ {
		if events[i-1].State.terminal() {
			t.Errorf("event after terminal state: %+v", events)
		}
	}
}

// The metrics endpoint exposes request, job, queue, cache, and latency
// series in Prometheus text format; pprof answers on /debug/pprof/.
func TestMetricsAndPprof(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":111}`)
	readBody(t, resp)
	resp = postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":111}`)
	readBody(t, resp)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	for _, want := range []string{
		"sweepd_up 1",
		`sweepd_requests_total{route="POST /api/v1/run",code="200"} 2`,
		`sweepd_jobs_total{state="done"} 2`,
		"sweepd_cache_hits_total 1",
		"sweepd_cache_misses_total 1",
		"sweepd_cache_entries 1",
		"sweepd_queue_depth 0",
		"sweepd_sim_events_total",
		"sweepd_job_duration_seconds_count 2",
		"sweepd_http_request_duration_seconds_count",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pprofBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(pprofBody, []byte("goroutine")) {
		t.Errorf("pprof index: %d", resp.StatusCode)
	}
}

// Config defaulting sanity.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Queue != 64 || c.Workers != 2 || c.CacheBytes != 256<<20 || c.Version != "dev" || c.MaxJobs != 1024 {
		t.Errorf("defaults = %+v", c)
	}
	neg := Config{CacheBytes: -1}.withDefaults()
	if neg.CacheBytes != -1 {
		t.Errorf("negative cache budget (disable) overwritten: %d", neg.CacheBytes)
	}
}

// The registry prunes only terminal jobs, oldest first.
func TestRegistryPruning(t *testing.T) {
	reg := newRegistry(2)
	mk := func(id string, terminal bool) *Job {
		j := newJob(id, SweepRequest{Exp: "E1"}, context.Background(), func() {})
		if terminal {
			j.finish(StateDone, nil, 0, nil)
		}
		return j
	}
	reg.add(mk("a", true))
	reg.add(mk("b", false))
	reg.add(mk("c", true))
	if _, ok := reg.get("a"); ok {
		t.Error("oldest terminal job not pruned")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := reg.get(id); !ok {
			t.Errorf("job %s pruned, want retained", id)
		}
	}
	// A registry full of live jobs overshoots rather than dropping them.
	reg2 := newRegistry(1)
	reg2.add(mk("x", false))
	reg2.add(mk("y", false))
	if _, ok := reg2.get("x"); !ok {
		t.Error("live job dropped by pruning")
	}
	if got := len(reg2.list()); got != 2 {
		t.Errorf("listing %d jobs, want 2", got)
	}
}
