package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeWorker mounts just enough of the worker API for coordinator unit
// tests: a canned /healthz and a scripted /api/v1/run. Real workers are
// exercised by the cluster tests; fakes let these tests pin queue depths
// and failure sequences that would be racy to stage on live servers.
func fakeWorker(t *testing.T, h Health, run http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	if run != nil {
		mux.HandleFunc("POST /api/v1/run", run)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg.Version = "test"
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = 50 * time.Millisecond
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// okHealth is a live idle worker's health report.
func okHealth(depth, workers int, mean float64) Health {
	return Health{Status: "ok", QueueDepth: depth, QueueCapacity: 64,
		Workers: workers, MeanJobSeconds: mean}
}

// TestCoordinatorRetryAfterCrossShard: a worker's 429 passes through, but
// Retry-After is recomputed from cluster-wide depth — total backlog over
// total workers at the slowest shard's mean latency, ceil'd to integer
// seconds and clamped to [1, 60] end to end.
func TestCoordinatorRetryAfterCrossShard(t *testing.T) {
	refuse := func(w http.ResponseWriter, r *http.Request) {
		// The worker's own (single-shard) estimate: deliberately short.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "job queue full"})
	}
	cases := []struct {
		name   string
		a, b   Health
		want   string
		hidden bool // worker b dead: excluded from the estimate
	}{
		// (10+10)/(2+2) backlog + 1 slots, × max(2,3)s mean → ceil(18) = 18.
		{"aggregates across shards", okHealth(10, 2, 2.0), okHealth(10, 2, 3.0), "18", false},
		// Huge backlog clamps to the 60 s ceiling.
		{"clamps to 60", okHealth(500, 1, 30.0), okHealth(500, 1, 30.0), "60", false},
		// No latency estimate yet → the 1 s floor.
		{"floors at 1", okHealth(10, 2, 0), okHealth(10, 2, 0), "1", false},
		// Fractional seconds round up to the next whole second.
		{"integer seconds", okHealth(1, 2, 0.9), okHealth(0, 2, 0.1), "2", false},
		// A dead shard's stale depth must not inflate the estimate.
		{"dead shard excluded", okHealth(3, 2, 1.0), Health{Status: "draining"}, "3", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wa := fakeWorker(t, tc.a, refuse)
			wb := fakeWorker(t, tc.b, refuse)
			_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{wa.URL, wb.URL}})

			// Find a request routed to a live shard (with one shard down,
			// any key routes to the survivor).
			resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true}`)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			got := resp.Header.Get("Retry-After")
			if got != tc.want {
				t.Errorf("Retry-After = %q, want %q", got, tc.want)
			}
			if _, err := time.ParseDuration(got + "s"); err != nil {
				t.Errorf("Retry-After %q is not integer seconds", got)
			}
			_ = tc.hidden
		})
	}
}

// TestCoordinatorDLQParkAndRequeue: a point that fails every retry parks
// with its attempt history; requeueing it after the worker heals drives
// it to completion and drains the queue. Unknown or non-parked ids 404.
func TestCoordinatorDLQParkAndRequeue(t *testing.T) {
	var healed atomic.Bool
	var attempts atomic.Int64
	worker := fakeWorker(t, okHealth(0, 2, 0), func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		if !healed.Load() {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "synthetic worker failure"})
			return
		}
		w.Header().Set("X-Sweepd-Source", "computed")
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"healed":true}`))
	})
	c, ts := newTestCoordinator(t, CoordinatorConfig{
		Workers:     []string{worker.URL},
		RetryBase:   5 * time.Millisecond,
		MaxAttempts: 2,
	})

	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("parked point: status %d, want 502: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "parked in dead-letter queue") {
		t.Errorf("502 body does not name the DLQ: %s", body)
	}
	// 1 direct dispatch + MaxAttempts retries, all failed.
	if n := attempts.Load(); n != 3 {
		t.Errorf("worker saw %d attempts, want 3 (1 direct + 2 retries)", n)
	}

	entries := clusterDLQ(t, ts.URL)
	if len(entries) != 1 {
		t.Fatalf("DLQ entries = %d, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.State != DLQParked {
		t.Errorf("entry state = %q, want parked", e.State)
	}
	if e.Attempts != 2 || e.MaxAttempts != 2 {
		t.Errorf("entry attempts = %d/%d, want 2/2", e.Attempts, e.MaxAttempts)
	}
	if !strings.Contains(e.LastError, "synthetic worker failure") {
		t.Errorf("entry last_error = %q, want the worker's error", e.LastError)
	}
	if e.Spec != "E1" || e.Key == "" {
		t.Errorf("entry spec/key = %q/%q, want E1/<key>", e.Spec, e.Key)
	}

	// While parked the gauges show it.
	metrics := scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		"sweepd_coord_dlq_parked 1",
		"sweepd_coord_dlq_retrying 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("parked-state metrics missing %q", want)
		}
	}

	// Requeue against a healed worker: 202, then the queue drains.
	healed.Store(true)
	resp = postJSON(t, ts.URL+"/api/v1/dlq/"+e.ID+"/requeue", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("requeue: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	readBody(t, resp)
	deadline := time.Now().Add(10 * time.Second)
	for len(clusterDLQ(t, ts.URL)) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("DLQ did not drain after requeue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	metrics = scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		"sweepd_coord_dlq_entered_total 1",
		"sweepd_coord_dlq_parked_total 1",
		"sweepd_coord_dlq_requeued_total 1",
		"sweepd_coord_dlq_recovered_total 1",
		"sweepd_coord_dlq_retrying 0",
		"sweepd_coord_dlq_parked 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Requeue of a resolved (gone) or unknown id is a 404.
	for _, id := range []string{e.ID, "dlq999"} {
		resp := postJSON(t, ts.URL+"/api/v1/dlq/"+id+"/requeue", "")
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("requeue %q: status %d, want 404", id, resp.StatusCode)
		}
	}
	_ = c
}

// TestCoordinatorNoLiveWorkers: with every shard down the coordinator
// reports degraded health and parks submissions instead of hanging.
func TestCoordinatorNoLiveWorkers(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens: every probe is a transport error
	_, ts := newTestCoordinator(t, CoordinatorConfig{
		Workers:     []string{dead.URL},
		RetryBase:   time.Millisecond,
		MaxAttempts: 2,
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h CoordHealth
	if err := json.Unmarshal(readBody(t, resp), &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Errorf("healthz = %d/%q, want 503/degraded", resp.StatusCode, h.Status)
	}
	if h.WorkersAlive != 0 || h.WorkersTotal != 1 {
		t.Errorf("workers = %d/%d, want 0/1", h.WorkersAlive, h.WorkersTotal)
	}

	resp = postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (parked): %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no live workers") {
		t.Errorf("parked error does not say no live workers: %s", body)
	}
}

// TestCoordinatorValidatesLocally: garbage requests are rejected by the
// coordinator itself with the worker's status codes — no shard sees them.
func TestCoordinatorValidatesLocally(t *testing.T) {
	var hits atomic.Int64
	worker := fakeWorker(t, okHealth(0, 2, 0), func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}"))
	})
	_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{worker.URL}})

	cases := []struct {
		body string
		want int
	}{
		{`{"exp":"E1","unknown_knob":1}`, http.StatusBadRequest},
		{`{"exp":"E999"}`, http.StatusNotFound},
		{`{}`, http.StatusBadRequest},
		{`{"exp":"E1","resume_b64":"AAAA"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/api/v1/run", tc.body)
		readBody(t, resp)
		if resp.StatusCode != tc.want {
			t.Errorf("body %s: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	if n := hits.Load(); n != 0 {
		t.Errorf("workers saw %d dispatches of invalid requests", n)
	}
}

// TestCoordinatorSnapshotBlobs: publish/fetch round trip, latest-wins per
// key, 404 for unknown keys, and cap eviction of the oldest key.
func TestCoordinatorSnapshotBlobs(t *testing.T) {
	worker := fakeWorker(t, okHealth(0, 2, 0), nil)
	_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{worker.URL}, MaxBlobs: 2})

	put := func(key, blob string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/snapshots/"+key, "application/octet-stream",
			strings.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		return resp.StatusCode
	}
	get := func(key string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/api/v1/snapshots/" + key)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		return resp.StatusCode, string(body)
	}

	if code := put("k1", "blob-one"); code != http.StatusNoContent {
		t.Fatalf("put: status %d", code)
	}
	if code, body := get("k1"); code != http.StatusOK || body != "blob-one" {
		t.Errorf("get k1 = %d %q, want 200 blob-one", code, body)
	}
	if code := put("k1", "blob-one-v2"); code != http.StatusNoContent {
		t.Fatalf("overwrite: status %d", code)
	}
	if _, body := get("k1"); body != "blob-one-v2" {
		t.Errorf("latest-wins violated: got %q", body)
	}
	if code, _ := get("missing"); code != http.StatusNotFound {
		t.Errorf("unknown key: status %d, want 404", code)
	}
	if code := put("k2", ""); code != http.StatusBadRequest {
		t.Errorf("empty blob: status %d, want 400", code)
	}

	// Cap is 2 keys: adding k2 and k3 evicts k1, the oldest.
	put("k2", "blob-two")
	put("k3", "blob-three")
	if code, _ := get("k1"); code != http.StatusNotFound {
		t.Errorf("k1 survived past the blob cap: status %d", code)
	}
	for key, want := range map[string]string{"k2": "blob-two", "k3": "blob-three"} {
		if _, body := get(key); body != want {
			t.Errorf("get %s = %q, want %q", key, body, want)
		}
	}
}

// TestCoordinatorDirectPassThrough: a healthy dispatch relays the
// worker's bytes, headers, and status verbatim, tagged with the shard.
func TestCoordinatorDirectPassThrough(t *testing.T) {
	const payload = `{"exp":"E1","title":"t","tables":[]}`
	worker := fakeWorker(t, okHealth(0, 2, 0), func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Exp != "E1" {
			t.Errorf("worker got mangled request: %v %+v", err, req)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Sweepd-Source", "hit")
		w.Write([]byte(payload))
	})
	_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{worker.URL}})

	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, []byte(payload)) {
		t.Errorf("body not relayed verbatim: %s", body)
	}
	if got := resp.Header.Get("X-Sweepd-Source"); got != "hit" {
		t.Errorf("X-Sweepd-Source = %q, want hit", got)
	}
	if got := resp.Header.Get("X-Sweepd-Worker"); got != "w0" {
		t.Errorf("X-Sweepd-Worker = %q, want w0", got)
	}
}

// fakeJobsWorker is a fakeWorker whose scripted handler answers the async
// submit endpoint instead of the sync run.
func fakeJobsWorker(t *testing.T, jobs http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, okHealth(0, 2, 0))
	})
	mux.HandleFunc("POST /api/v1/jobs", jobs)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestCoordinatorExperimentsCatalog: the catalog is a property of the
// coordinator's build and answers even with every shard down.
func TestCoordinatorExperimentsCatalog(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{dead.URL}})

	resp, err := http.Get(ts.URL + "/api/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var catalog []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal(body, &catalog); err != nil {
		t.Fatalf("catalog not JSON: %v\n%s", err, body)
	}
	ids := make(map[string]bool, len(catalog))
	for _, e := range catalog {
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E18", "E19"} {
		if !ids[want] {
			t.Errorf("catalog missing %s: %v", want, ids)
		}
	}
}

// TestCoordinatorSubmitFailover: async submits fail over in rank order —
// a shard that 500s is skipped, the next shard's 202 wins and the job id
// carries that shard's prefix; when every shard fails the submit answers
// 503 naming the last error.
func TestCoordinatorSubmitFailover(t *testing.T) {
	broken := fakeJobsWorker(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "synthetic submit failure"})
	})
	healthy := fakeJobsWorker(t, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, submitResponse{ID: "j7", StatusURL: "/api/v1/jobs/j7"})
	})
	_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{broken.URL, healthy.URL}})

	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID != "w1-j7" {
		t.Errorf("job id = %q, want w1-j7 (healthy shard's job, prefixed)", sub.ID)
	}
	if !strings.HasSuffix(sub.StatusURL, "/api/v1/jobs/w1-j7") {
		t.Errorf("status url = %q, want the prefixed id", sub.StatusURL)
	}

	// Local validation still runs before any dispatch.
	resp = postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E999"}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment submit: status %d, want 404", resp.StatusCode)
	}
}

// TestCoordinatorSubmitAllShardsFail: exhaustion answers 503, a shard
// answering 202 with garbage answers 502, and a worker-side 429 passes
// through with the cluster-wide Retry-After.
func TestCoordinatorSubmitAllShardsFail(t *testing.T) {
	cases := []struct {
		name     string
		handler  http.HandlerFunc
		wantCode int
		wantBody string
	}{
		{"all shards 500", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: "boom"})
		}, http.StatusServiceUnavailable, "cannot place job"},
		{"garbage 202", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte("not json"))
		}, http.StatusBadGateway, "bad submit response"},
		{"queue full passes through", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "job queue full"})
		}, http.StatusTooManyRequests, "queue full"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			worker := fakeJobsWorker(t, tc.handler)
			_, ts := newTestCoordinator(t, CoordinatorConfig{Workers: []string{worker.URL}})
			resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E1","quick":true}`)
			body := readBody(t, resp)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantCode, body)
			}
			if !strings.Contains(string(body), tc.wantBody) {
				t.Errorf("body %q missing %q", body, tc.wantBody)
			}
			if tc.wantCode == http.StatusTooManyRequests {
				if ra := resp.Header.Get("Retry-After"); ra == "" {
					t.Error("429 relayed without a Retry-After")
				}
			}
		})
	}
}
