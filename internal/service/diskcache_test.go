package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"checkpointsim/internal/cache"
)

// flipMiddleByte doctors the store's single log file with a one-bit flip
// halfway in — inside the sealed record body, past the length prefix.
func flipMiddleByte(t *testing.T, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one log file in %s: %v %v", dir, files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// newDiskBackedServer builds a server over a DiskStore in dir, as
// cmd/sweepd -cache-dir does.
func newDiskBackedServer(t *testing.T, dir string) (*Server, string) {
	t.Helper()
	st, err := cache.NewDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{CacheStore: st})
	return srv, ts.URL
}

// TestServiceDiskCacheSurvivesRestart: the restart byte-identity contract
// at the service boundary. A result computed before a clean shutdown is
// served byte-identical by the next process as a cache hit from disk — no
// recomputation — and the disk-hit counter reaches the metrics endpoint.
func TestServiceDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	const body = `{"exp":"E1","quick":true}`

	srv1, url1 := newDiskBackedServer(t, dir)
	resp := postJSON(t, url1+"/api/v1/run", body)
	first := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, first)
	}
	if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
		t.Fatalf("first run source = %q, want computed", src)
	}
	srv1.Close() // syncs and releases the log; the httptest cleanup re-Close is a no-op

	srv2, url2 := newDiskBackedServer(t, dir)
	resp = postJSON(t, url2+"/api/v1/run", body)
	second := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart run: status %d: %s", resp.StatusCode, second)
	}
	if src := resp.Header.Get("X-Sweepd-Source"); src != "hit" {
		t.Errorf("post-restart source = %q, want hit (warm from disk)", src)
	}
	if !bytes.Equal(second, first) {
		t.Fatalf("restart broke byte identity:\n--- before ---\n%s\n--- after ---\n%s", first, second)
	}
	if ev := srv2.SimEvents(); ev != 0 {
		t.Errorf("restarted server executed %d events for a warm key, want 0", ev)
	}

	metrics := scrape(t, url2+"/metrics")
	for _, want := range []string{
		"sweepd_cache_disk_hits_total 1",
		"sweepd_cache_disk_corrupt_total 0",
		"sweepd_cache_hits_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServiceDiskCacheCorruptFallsBackToCompute: a doctored log record is
// detected at read time and the point recomputes — same bytes out, one
// corrupt-record count, never the damaged payload.
func TestServiceDiskCacheCorruptFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	const body = `{"exp":"E1","quick":true}`

	srv1, url1 := newDiskBackedServer(t, dir)
	resp := postJSON(t, url1+"/api/v1/run", body)
	first := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, first)
	}
	srv1.Close()

	// Doctor one byte in the middle of the log — inside the sealed record.
	flipMiddleByte(t, dir)

	_, url2 := newDiskBackedServer(t, dir)
	resp = postJSON(t, url2+"/api/v1/run", body)
	second := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption run: status %d: %s", resp.StatusCode, second)
	}
	if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
		t.Errorf("post-corruption source = %q, want computed (the damaged record must not serve)", src)
	}
	if !bytes.Equal(second, first) {
		t.Fatalf("recomputed bytes differ from the original run")
	}
	metrics := scrape(t, url2+"/metrics")
	if !strings.Contains(metrics, "sweepd_cache_disk_corrupt_total 1") {
		t.Errorf("metrics missing the corrupt-record count:\n%s", metrics)
	}
}
