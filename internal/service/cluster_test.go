package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
)

// testCluster is a coordinator fronting n real workers, all in-process on
// httptest servers — the whole distributed topology without a single
// exec. Worker i is shard "wi". Workers publish scenario snapshots to the
// coordinator over real HTTP, exactly as cmd/sweepd -worker does.
type testCluster struct {
	t       *testing.T
	workers []*clusterWorker
	coord   *Coordinator
	coordTS *httptest.Server
}

type clusterWorker struct {
	name   string
	srv    *Server
	ts     *httptest.Server
	killed bool
}

// newTestCluster builds the cluster. workerCfg seeds every worker's
// config (Version, snapshot cadence, and the publish hook are wired here);
// coordCfg seeds the coordinator's (Workers and Version are wired here).
func newTestCluster(t *testing.T, n int, workerCfg Config, coordCfg CoordinatorConfig) *testCluster {
	t.Helper()
	c := &testCluster{t: t}

	// Workers exist before the coordinator, so the publish hook resolves
	// the coordinator URL late — same shape as a real worker flagging
	// -coordinator-url before the coordinator finishes booting.
	var coordURL atomic.Value
	publish := func(key string, blob []byte) {
		u, _ := coordURL.Load().(string)
		if u == "" {
			return
		}
		resp, err := http.Post(u+"/api/v1/snapshots/"+key, "application/octet-stream", bytes.NewReader(blob))
		if err == nil {
			resp.Body.Close()
		}
	}

	urls := make([]string, n)
	for i := 0; i < n; i++ {
		cfg := workerCfg
		cfg.Version = "test"
		if cfg.Timeout == 0 {
			cfg.Timeout = time.Minute
		}
		cfg.PublishSnapshot = publish
		srv := New(cfg)
		ts := httptest.NewServer(srv.Handler())
		w := &clusterWorker{name: "w" + string(rune('0'+i)), srv: srv, ts: ts}
		c.workers = append(c.workers, w)
		urls[i] = ts.URL
	}

	coordCfg.Workers = urls
	coordCfg.Version = "test"
	if coordCfg.HealthEvery == 0 {
		coordCfg.HealthEvery = 100 * time.Millisecond
	}
	if coordCfg.RetryBase == 0 {
		coordCfg.RetryBase = 50 * time.Millisecond
	}
	coord, err := NewCoordinator(coordCfg)
	if err != nil {
		t.Fatal(err)
	}
	c.coord = coord
	c.coordTS = httptest.NewServer(coord.Handler())
	coordURL.Store(c.coordTS.URL)

	t.Cleanup(func() {
		c.coordTS.Close()
		coord.Close()
		for _, w := range c.workers {
			if !w.killed {
				w.ts.CloseClientConnections()
				w.ts.Close()
				w.srv.Close()
			}
		}
	})
	return c
}

// kill takes worker i down hard: live connections severed mid-flight
// (the coordinator's dispatch sees a transport error, like a SIGKILL'd
// process), listener closed, jobs cancelled.
func (c *testCluster) kill(i int) {
	w := c.workers[i]
	w.killed = true
	w.ts.CloseClientConnections()
	w.srv.Close() // cancel running jobs so handlers return and Close can finish
	w.ts.Close()
}

// url is the coordinator's base URL — the only address clients know.
func (c *testCluster) url() string { return c.coordTS.URL }

// primaryFor computes which worker shard the cluster routes sc to.
func (c *testCluster) primaryFor(sc exp.Scenario) int {
	names := make([]string, len(c.workers))
	for i, w := range c.workers {
		names[i] = w.name
	}
	key := ScenarioCacheKey("test", sc, network.DefaultParams())
	name := cache.PickNode(key, names)
	for i, w := range c.workers {
		if w.name == name {
			return i
		}
	}
	c.t.Fatalf("no worker named %q", name)
	return -1
}

// localScenarioBytes is the single-process reference: the exact bytes a
// sweepd would compute and cache for sc.
func localScenarioBytes(t *testing.T, sc exp.Scenario) []byte {
	t.Helper()
	tables, err := sc.Run(exp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeScenarioResult(sc, tables)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosScenarios is the mini-campaign the cluster tests sweep: seed
// variants of the resume scenario, so points spread across shards and
// every one is long enough to snapshot mid-run.
func chaosScenarios(n int) []exp.Scenario {
	out := make([]exp.Scenario, n)
	for i := range out {
		sc := resumeScenario
		sc.Seed = resumeScenario.Seed + uint64(i)
		out[i] = sc
	}
	return out
}

// TestClusterCampaignByteIdentity: a healthy cluster serves every point
// of a campaign byte-identical to a single-process run, routes each key
// to its rendezvous shard (sticky — the repeat is a cache hit on the
// same worker), and never touches the DLQ.
func TestClusterCampaignByteIdentity(t *testing.T) {
	c := newTestCluster(t, 2, Config{SnapshotEvery: resumeCadence}, CoordinatorConfig{})
	for _, sc := range chaosScenarios(3) {
		ref := localScenarioBytes(t, sc)
		wantWorker := c.workers[c.primaryFor(sc)].name

		resp := postJSON(t, c.url()+"/api/v1/run", scenarioBody(sc))
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", sc.ID(), resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Sweepd-Worker"); got != wantWorker {
			t.Errorf("%s routed to %s, rendezvous hash says %s", sc.ID(), got, wantWorker)
		}
		if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
			t.Errorf("%s first run source = %q, want computed", sc.ID(), src)
		}
		if !bytes.Equal(body, ref) {
			t.Fatalf("%s: cluster bytes differ from local run:\n--- cluster ---\n%s\n--- local ---\n%s", sc.ID(), body, ref)
		}

		resp = postJSON(t, c.url()+"/api/v1/run", scenarioBody(sc))
		again := readBody(t, resp)
		if src := resp.Header.Get("X-Sweepd-Source"); src != "hit" {
			t.Errorf("%s repeat source = %q, want hit (sticky routing missed the warm shard)", sc.ID(), src)
		}
		if got := resp.Header.Get("X-Sweepd-Worker"); got != wantWorker {
			t.Errorf("%s repeat routed to %s, want %s", sc.ID(), got, wantWorker)
		}
		if !bytes.Equal(again, ref) {
			t.Fatalf("%s: cache-hit bytes differ from local run", sc.ID())
		}
	}
	if entries := clusterDLQ(t, c.url()); len(entries) != 0 {
		t.Errorf("healthy campaign left DLQ entries: %+v", entries)
	}
}

// TestClusterKillWorkerMidCampaign is the chaos test the PR exists for:
// kill a worker while it is mid-scenario, and the point must still
// complete — dead-lettered by the coordinator, re-dispatched to the
// survivor with the dead peer's last published snapshot, resumed from
// that boundary, and served byte-identical to a single-process run. The
// DLQ drains back to zero, and the rest of the campaign completes on the
// survivor.
func TestClusterKillWorkerMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos test")
	}
	// Snapshot often, so the victim publishes a blob well before finishing
	// and the kill lands mid-run.
	c := newTestCluster(t, 2,
		Config{SnapshotEvery: 500},
		CoordinatorConfig{RetryBase: 50 * time.Millisecond, MaxAttempts: 8})

	scenarios := chaosScenarios(3)
	target := scenarios[0]
	victim := c.primaryFor(target)
	survivor := 1 - victim
	key := ScenarioCacheKey("test", target, network.DefaultParams())
	ref := localScenarioBytes(t, target)

	// Launch the target point through the coordinator.
	type runOut struct {
		code   int
		source string
		body   []byte
	}
	done := make(chan runOut, 1)
	go func() {
		resp, err := http.Post(c.url()+"/api/v1/run", "application/json",
			strings.NewReader(scenarioBody(target)))
		if err != nil {
			done <- runOut{code: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		done <- runOut{code: resp.StatusCode, source: resp.Header.Get("X-Sweepd-Source"), body: buf.Bytes()}
	}()

	// Wait until the victim has published at least one mid-run snapshot to
	// the coordinator, then pull the trigger.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(c.url() + "/api/v1/snapshots/" + key)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never published a snapshot blob")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.kill(victim)

	out := <-done
	if out.code != http.StatusOK {
		t.Fatalf("killed point did not recover: status %d: %s", out.code, out.body)
	}
	if !bytes.Equal(out.body, ref) {
		t.Fatalf("recovered bytes differ from single-process run:\n--- recovered ---\n%s\n--- local ---\n%s", out.body, ref)
	}
	if n := c.workers[survivor].srv.JobResumes(); n != 1 {
		t.Errorf("survivor JobResumes = %d, want 1 (should have resumed from the shipped blob)", n)
	}
	if n := c.workers[survivor].srv.ColdRetries(); n != 0 {
		t.Errorf("survivor ColdRetries = %d, want 0 (the shipped blob should have restored)", n)
	}

	// Recovery accounting: the point passed through the DLQ exactly once,
	// the re-dispatch carried the blob, and the queue drained to zero.
	if entries := clusterDLQ(t, c.url()); len(entries) != 0 {
		t.Errorf("DLQ did not drain after recovery: %+v", entries)
	}
	metrics := scrape(t, c.url()+"/metrics")
	for _, want := range []string{
		"sweepd_coord_dlq_entered_total 1",
		"sweepd_coord_dlq_recovered_total 1",
		"sweepd_coord_dlq_parked_total 0",
		"sweepd_coord_resume_shipped_total 1",
		"sweepd_coord_workers_alive 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	// The rest of the campaign completes on the survivor, byte-identically
	// — including points whose rendezvous primary was the dead worker.
	for _, sc := range scenarios[1:] {
		ref := localScenarioBytes(t, sc)
		resp := postJSON(t, c.url()+"/api/v1/run", scenarioBody(sc))
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after kill: status %d: %s", sc.ID(), resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Sweepd-Worker"); got != c.workers[survivor].name {
			t.Errorf("%s after kill routed to %q, want survivor %s", sc.ID(), got, c.workers[survivor].name)
		}
		if !bytes.Equal(body, ref) {
			t.Fatalf("%s after kill: bytes differ from local run", sc.ID())
		}
	}
}

// TestClusterAsyncJobProxy: the async path through the coordinator —
// submit returns a shard-prefixed id, status and result proxy through to
// the owning worker, the result bytes match a local run, and the merged
// job list carries the prefixed id.
func TestClusterAsyncJobProxy(t *testing.T) {
	c := newTestCluster(t, 2, Config{}, CoordinatorConfig{})
	sc := exp.Scenario{Workload: "sweep", Ranks: 8, Protocol: "none",
		FailureLaw: "none", Storage: "none", Noise: "none", Seed: 3}
	ref := localScenarioBytes(t, sc)
	wantWorker := c.workers[c.primaryFor(sc)].name

	resp := postJSON(t, c.url()+"/api/v1/jobs", scenarioBody(sc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var sub submitResponse
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sub.ID, wantWorker+"-") {
		t.Errorf("job id %q not prefixed with shard %q", sub.ID, wantWorker)
	}

	var body []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(c.url() + sub.ResultURL)
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if resp.StatusCode == http.StatusOK {
			body = b
			break
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result: status %d: %s", resp.StatusCode, b)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Equal(body, ref) {
		t.Fatalf("proxied result differs from local run:\n--- proxied ---\n%s\n--- local ---\n%s", body, ref)
	}

	resp, err := http.Get(c.url() + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []JobStatus
	if err := json.Unmarshal(readBody(t, resp), &jobs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range jobs {
		if j.ID == sub.ID {
			found = true
			if j.State != StateDone {
				t.Errorf("merged list shows %s state %q, want done", j.ID, j.State)
			}
		}
	}
	if !found {
		t.Errorf("merged job list missing %s: %+v", sub.ID, jobs)
	}

	// The SSE feed streams through the coordinator: a finished job emits
	// its terminal transition and the worker closes the stream.
	resp, err = http.Get(c.url() + "/api/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d: %s", resp.StatusCode, events)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Errorf("events Content-Type = %q, want text/event-stream", ct)
	}
	if got := resp.Header.Get("X-Sweepd-Worker"); got != wantWorker {
		t.Errorf("events X-Sweepd-Worker = %q, want %q", got, wantWorker)
	}
	if !strings.Contains(string(events), "done") {
		t.Errorf("event stream missing the terminal transition:\n%s", events)
	}
	resp, err = http.Get(c.url() + "/api/v1/jobs/zz-j1/events")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown shard: status %d, want 404", resp.StatusCode)
	}

	for _, bad := range []string{"zz-j1", "nodash", "w0-j999"} {
		resp, err := http.Get(c.url() + "/api/v1/jobs/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("job %q: status %d, want 404", bad, resp.StatusCode)
		}
	}
}

// clusterDLQ fetches the coordinator's dead-letter listing.
func clusterDLQ(t *testing.T, base string) []DLQEntry {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/dlq")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dlq list: status %d: %s", resp.StatusCode, body)
	}
	var entries []DLQEntry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	return entries
}

// scrape fetches a metrics endpoint as text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	return string(body)
}
