package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
)

// The cache-hit-equals-fresh-run property, end to end, for every
// experiment: a direct in-process run, the server's cold (computed)
// response, and the server's warm (cached) response must all be
// byte-identical. Quick scale keeps all 19 affordable under -race.
func TestCachedResultMatchesFreshRunAllExperiments(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	for _, e := range exp.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()

			// Ground truth: run the experiment in-process with exactly the
			// options the server resolves for this request body.
			o := exp.DefaultOptions()
			o.Seed = 7
			o.Quick = true
			o.Net = network.DefaultParams()
			tables, err := e.Run(o)
			if err != nil {
				t.Fatalf("local run: %v", err)
			}
			want, err := encodeResult(e, tables)
			if err != nil {
				t.Fatal(err)
			}

			body := `{"exp":"` + e.ID + `","quick":true,"seed":7}`
			post := func(label string) (string, []byte) {
				resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				got := readBody(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s run: %d %s", label, resp.StatusCode, got)
				}
				return resp.Header.Get("X-Sweepd-Source"), got
			}

			coldSrc, cold := post("cold")
			warmSrc, warm := post("warm")
			if coldSrc != "computed" {
				t.Errorf("cold source %q, want computed", coldSrc)
			}
			if warmSrc != "hit" {
				t.Errorf("warm source %q, want hit", warmSrc)
			}
			if !bytes.Equal(cold, want) {
				t.Errorf("server cold response differs from in-process run\nserver: %.200s\nlocal:  %.200s", cold, want)
			}
			if !bytes.Equal(warm, cold) {
				t.Error("cached response differs from computed response")
			}

			// The text rendering of the cached result matches what cmd/sweep
			// would print for this experiment (header + aligned tables).
			res, err := decodeResult(warm)
			if err != nil {
				t.Fatal(err)
			}
			var sb bytes.Buffer
			sb.WriteString("### " + e.ID + " — " + e.Title + "\n")
			for _, tbl := range tables {
				tbl.Fprint(&sb)
				sb.WriteByte('\n')
			}
			if res.Text() != sb.String() {
				t.Error("reconstructed text rendering differs from direct table rendering")
			}
		})
	}
}

// Distinct configurations must miss the cache even when the experiment is
// the same: seed, scale, preset, and validation all partition the key
// space. (The injectivity of the key itself is fuzz-tested in
// internal/cache; this checks the service wires the knobs through.)
func TestDistinctConfigsDoNotShareCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	bodies := []string{
		`{"exp":"E1","quick":true,"seed":7}`,
		`{"exp":"E1","quick":true,"seed":8}`,
		`{"exp":"E1","quick":true,"seed":7,"net":"ethernet"}`,
		`{"exp":"E1","quick":true,"seed":7,"validate":true}`,
		`{"exp":"E1","quick":true,"seed":7,"storage":{"aggregate_gbps":500}}`,
	}
	for _, body := range bodies {
		resp := postJSON(t, ts.URL+"/api/v1/run", body)
		raw := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", body, resp.StatusCode, raw)
		}
		if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
			t.Errorf("%s: source %q, want computed (a distinct config hit the cache)", body, src)
		}
	}
	cs := s.CacheStats()
	if cs.Hits != 0 || cs.Misses != int64(len(bodies)) || cs.Entries != len(bodies) {
		t.Errorf("cache stats %+v after %d distinct configs, want 0 hits / %d misses / %d entries",
			cs, len(bodies), len(bodies), len(bodies))
	}
}

// A server with caching disabled recomputes every request and still
// returns identical bytes — determinism does not depend on the cache.
func TestDisabledCacheStillDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: -1})
	var prev []byte
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":7}`)
		raw := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: %d %s", i, resp.StatusCode, raw)
		}
		if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
			t.Errorf("run %d: source %q, want computed with caching disabled", i, src)
		}
		if prev != nil && !bytes.Equal(raw, prev) {
			t.Error("uncached reruns returned different bytes")
		}
		prev = raw
	}
}
