package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"checkpointsim/internal/cache"
)

// JobState is the lifecycle of a submitted sweep.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: on a worker (or waiting on an identical in-flight
	// computation via singleflight).
	StateRunning JobState = "running"
	// StateDone: finished; result bytes are available.
	StateDone JobState = "done"
	// StateFailed: the run errored (including cancellation and timeout).
	StateFailed JobState = "failed"
	// StateRejected: dequeued during drain; never ran.
	StateRejected JobState = "rejected"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateRejected
}

// Job is one submitted sweep request moving through the queue. Mutable
// fields are guarded by mu; done closes exactly once, when the job reaches
// a terminal state.
type Job struct {
	ID  string
	Req SweepRequest

	mu       sync.Mutex
	state    JobState
	err      error
	source   cache.Source
	result   []byte
	created  time.Time
	started  time.Time
	finished time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

func newJob(id string, req SweepRequest, ctx context.Context, cancel context.CancelFunc) *Job {
	return &Job{
		ID:      id,
		Req:     req,
		state:   StateQueued,
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the outcome and releases waiters. Idempotence is not
// needed — exactly one worker owns a job — but the terminal guard keeps a
// late double-call from panicking on the closed channel.
func (j *Job) finish(state JobState, result []byte, src cache.Source, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.source = src
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel()
	close(j.done)
}

// snapshot returns a consistent view for status rendering.
func (j *Job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.ID,
		Exp:     j.Req.Exp,
		State:   j.state,
		Created: j.created.UTC(),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state.terminal() {
		st.Cached = j.source == cache.Hit || j.source == cache.Shared
		st.Source = j.source.String()
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.ElapsedMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	case !j.started.IsZero():
		st.ElapsedMs = float64(time.Since(j.started)) / float64(time.Millisecond)
	}
	return st
}

// resultBytes returns the stored result for a done job.
func (j *Job) resultBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID        string   `json:"id"`
	Exp       string   `json:"exp"`
	State     JobState `json:"state"`
	// Cached is true when the result came from the cache (hit) or from an
	// identical concurrent computation (shared) rather than a fresh run.
	Cached bool `json:"cached"`
	// Source refines Cached: "computed", "hit", or "shared" (terminal
	// states only).
	Source string `json:"source,omitempty"`
	// ElapsedMs is the server-side execution time: running → so far,
	// terminal → total. Queue wait is excluded, so a cache hit reports the
	// lookup cost, not the queue's mood.
	ElapsedMs float64   `json:"elapsed_ms"`
	Error     string    `json:"error,omitempty"`
	Created   time.Time `json:"created"`
}

// registry retains jobs for status lookups, pruning the oldest terminal
// jobs past a cap so a long-lived server does not grow without bound.
// (Result bytes usually live on in the cache; only job metadata is
// pruned.)
type registry struct {
	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for pruning
	cap   int
}

func newRegistry(cap int) *registry {
	if cap < 1 {
		cap = 1
	}
	return &registry{jobs: make(map[string]*Job), cap: cap}
}

func (r *registry) add(j *Job) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobs[j.ID] = j
	r.order = append(r.order, j.ID)
	// Prune oldest *terminal* jobs over the cap; live jobs are never
	// dropped (their owners hold pointers, and status must stay visible).
	for len(r.jobs) > r.cap {
		pruned := false
		for i, id := range r.order {
			old, ok := r.jobs[id]
			if !ok {
				r.order = append(r.order[:i], r.order[i+1:]...)
				pruned = true
				break
			}
			old.mu.Lock()
			terminal := old.state.terminal()
			old.mu.Unlock()
			if terminal {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything is live; allow temporary overshoot
		}
	}
}

func (r *registry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// list returns snapshots of all retained jobs, oldest first.
func (r *registry) list() []JobStatus {
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		if j, ok := r.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	r.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// errQueueFull maps to 429 + Retry-After.
var errQueueFull = fmt.Errorf("job queue full")

// errDraining maps to 503: the server is shutting down.
var errDraining = fmt.Errorf("server draining")
