package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// N goroutines racing on the same sweep point must trigger exactly one
// simulation: one request computes, the rest share or hit. Verified by the
// simulation-event counter — duplicate runs would double it — plus
// byte-identical bodies and a single "computed" source.
func TestConcurrentIdenticalRequestsSimulateOnce(t *testing.T) {
	// Baseline: how many simulation events does one fresh run cost?
	ref, refTS := newTestServer(t, Config{})
	resp := postJSON(t, refTS.URL+"/api/v1/run", `{"exp":"E1","quick":true,"seed":7}`)
	refBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline run: %d %s", resp.StatusCode, refBody)
	}
	singleRun := ref.SimEvents()
	if singleRun <= 0 {
		t.Fatalf("baseline run recorded %d simulation events", singleRun)
	}

	// Race N identical requests against a fresh server.
	s, ts := newTestServer(t, Config{Workers: 4})
	const n = 16
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		bodies  [][]byte
		sources []string
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/api/v1/run", "application/json",
				strings.NewReader(`{"exp":"E1","quick":true,"seed":7}`))
			if err != nil {
				t.Error(err)
				return
			}
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("racing run: %d %s", resp.StatusCode, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			sources = append(sources, resp.Header.Get("X-Sweepd-Source"))
			mu.Unlock()
		}()
	}
	wg.Wait()

	if got := s.SimEvents(); got != singleRun {
		t.Errorf("%d racing requests cost %d simulation events, want exactly one run's %d",
			n, got, singleRun)
	}
	if len(bodies) != n {
		t.Fatalf("%d responses, want %d", len(bodies), n)
	}
	computed := 0
	for i, b := range bodies {
		if !bytes.Equal(b, refBody) {
			t.Errorf("response %d differs from the fresh-run bytes", i)
		}
		if sources[i] == "computed" {
			computed++
		}
	}
	if computed != 1 {
		t.Errorf("%d responses claim source=computed (%v), want exactly 1", computed, sources)
	}
}

// Graceful shutdown: the in-flight job completes, the queued backlog is
// rejected without running, and no new events are simulated for the
// rejected jobs.
func TestDrainCompletesInFlightRejectsQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 4})

	submit := func(body string) submitResponse {
		resp := postJSON(t, ts.URL+"/api/v1/jobs", body)
		raw := readBody(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", body, resp.StatusCode, raw)
		}
		var sub submitResponse
		if err := json.Unmarshal(raw, &sub); err != nil {
			t.Fatal(err)
		}
		return sub
	}

	// Job A holds the lone worker (full-scale E5 runs for over a second,
	// long enough that the drain below reliably begins while it is still
	// running); B and C wait in the queue behind it.
	a := submit(`{"exp":"E5","seed":201}`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + a.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st := decodeStatus(t, readBody(t, resp)); st.State == StateRunning || st.State.terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	b := submit(`{"exp":"E1","quick":true,"seed":202}`)
	c := submit(`{"exp":"E1","quick":true,"seed":203}`)

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	stA := waitTerminal(t, ts.URL, a.ID, 5*time.Second)
	if stA.State != StateDone {
		t.Errorf("in-flight job A ended %s (%s), want done", stA.State, stA.Error)
	}
	for _, sub := range []submitResponse{b, c} {
		st := waitTerminal(t, ts.URL, sub.ID, time.Second)
		if st.State != StateRejected {
			t.Errorf("queued job %s ended %s, want rejected", sub.ID, st.State)
		}
	}

	// A's result stays fetchable after the drain; rejected jobs have none.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + a.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("result of completed job after drain: %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + b.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of rejected job: %d, want 409", resp.StatusCode)
	}
}

// Drain with an expired context cancels whatever is still running instead
// of hanging, and reports the context error.
func TestDrainDeadlineCancelsRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// A full-scale E2 runs for several seconds — far past the drain grace.
	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"exp":"E2","seed":204}`)
	var sub submitResponse
	if err := json.Unmarshal(readBody(t, resp), &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/api/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st := decodeStatus(t, readBody(t, r)); st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(drainCtx)
	if err == nil {
		t.Fatal("drain with expired grace returned nil, want context error")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("drain took %s despite a 50ms grace", took)
	}
	st := waitTerminal(t, ts.URL, sub.ID, 10*time.Second)
	if st.State != StateFailed {
		t.Errorf("cut-loose job ended %s, want failed", st.State)
	}
}
