package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
)

// resumeScenario is the scenario the kill-and-resume tests revolve around:
// large enough to take several snapshots at the test cadence.
var resumeScenario = exp.Scenario{Workload: "cg", Ranks: 16, Protocol: "coordinated",
	FailureLaw: "exp", Storage: "pfs", Noise: "none", Seed: 11}

const resumeCadence = 2000

// runScenarioSync submits sc synchronously and returns the result bytes.
func runScenarioSync(t *testing.T, url string, sc exp.Scenario) []byte {
	t.Helper()
	resp := postJSON(t, url+"/api/v1/run", scenarioBody(sc))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// midRunBlob produces the exact on-disk state a sweepd killed mid-run
// leaves behind: the latest snapshot persisted before the kill. It runs the
// scenario in streaming-snapshot mode and returns a blob from the middle of
// the run.
func midRunBlob(t *testing.T, sc exp.Scenario) []byte {
	t.Helper()
	var blobs [][]byte
	o := exp.DefaultOptions()
	o.SnapshotEvery = resumeCadence
	o.OnSnapshot = func(s sim.Snapshot) {
		blobs = append(blobs, append([]byte(nil), s.Blob...))
	}
	if _, err := sc.Run(o); err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatalf("scenario %s took no snapshots at cadence %d", sc.ID(), resumeCadence)
	}
	return blobs[len(blobs)/2]
}

// TestScenarioSnapshotLifecycle: a server with a snapshot dir persists
// snapshots during a scenario run, produces bytes identical to a server
// without one, and deletes the blob once the job completes.
func TestScenarioSnapshotLifecycle(t *testing.T) {
	coldSrv, coldTS := newTestServer(t, Config{})
	cold := runScenarioSync(t, coldTS.URL, resumeScenario)

	dir := t.TempDir()
	snapSrv, snapTS := newTestServer(t, Config{SnapshotDir: dir, SnapshotEvery: resumeCadence})
	got := runScenarioSync(t, snapTS.URL, resumeScenario)
	if !bytes.Equal(got, cold) {
		t.Fatalf("snapshotting changed the result:\n--- snapshotting ---\n%s\n--- cold ---\n%s", got, cold)
	}
	if n := snapSrv.SnapshotsTaken(); n == 0 {
		t.Error("no snapshots persisted during the run")
	}
	if n := snapSrv.JobResumes(); n != 0 {
		t.Errorf("fresh run counted %d resumes", n)
	}
	if n := snapSrv.ColdRetries(); n != 0 {
		t.Errorf("fresh run counted %d cold retries", n)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(left) != 0 {
		t.Errorf("snapshot dir not cleaned up after success: %v", left)
	}
	_ = coldSrv
}

// TestKillAndResumeScenario is the crash–resume test at the service
// boundary: a snapshot persisted mid-run by a killed server is picked up by
// a restarted server, which completes the job from the boundary (the resume
// counter proves the restore carried the run — any restore failure would
// have surfaced as a cold retry) and serves bytes identical to a cold run.
func TestKillAndResumeScenario(t *testing.T) {
	sc := resumeScenario
	coldSrv, coldTS := newTestServer(t, Config{})
	cold := runScenarioSync(t, coldTS.URL, sc)
	coldEvents := coldSrv.SimEvents()
	if coldEvents == 0 {
		t.Fatal("cold run executed no events")
	}

	// The "kill": plant the mid-run blob under the job's cache key, exactly
	// where the previous server's atomic writes left it.
	dir := t.TempDir()
	key := ScenarioCacheKey("test", sc, network.DefaultParams())
	if err := os.WriteFile(filepath.Join(dir, key+".ckpt"), midRunBlob(t, sc), 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{SnapshotDir: dir, SnapshotEvery: resumeCadence})
	got := runScenarioSync(t, ts.URL, sc)
	if !bytes.Equal(got, cold) {
		t.Fatalf("resumed result diverged from cold run:\n--- resumed ---\n%s\n--- cold ---\n%s", got, cold)
	}
	if n := srv.JobResumes(); n != 1 {
		t.Errorf("JobResumes = %d, want 1", n)
	}
	if n := srv.ColdRetries(); n != 0 {
		t.Errorf("ColdRetries = %d, want 0 (the snapshot should have restored)", n)
	}
	// The resumed engine restores its event counter from the snapshot, so
	// the job reports the identical total — part of the byte-identity
	// contract (a smaller count would leak the interruption into results).
	if ev := srv.SimEvents(); ev != coldEvents {
		t.Errorf("resumed run reported %d events, cold run %d — restored counters must match", ev, coldEvents)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".ckpt")); !os.IsNotExist(err) {
		t.Errorf("snapshot blob not deleted after the resumed job completed (err=%v)", err)
	}
}

// TestResumeCorruptSnapshotFallsBackCold: a truncated blob (a crash before
// any atomic rename would never produce one, but disks rot) must not fail
// the job — the server discards it and runs cold, still byte-identical.
func TestResumeCorruptSnapshotFallsBackCold(t *testing.T) {
	sc := resumeScenario
	_, coldTS := newTestServer(t, Config{})
	cold := runScenarioSync(t, coldTS.URL, sc)

	blob := midRunBlob(t, sc)
	dir := t.TempDir()
	key := ScenarioCacheKey("test", sc, network.DefaultParams())
	if err := os.WriteFile(filepath.Join(dir, key+".ckpt"), blob[:len(blob)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	srv, ts := newTestServer(t, Config{SnapshotDir: dir, SnapshotEvery: resumeCadence})
	got := runScenarioSync(t, ts.URL, sc)
	if !bytes.Equal(got, cold) {
		t.Fatalf("cold-fallback result diverged:\n--- fallback ---\n%s\n--- cold ---\n%s", got, cold)
	}
	if n := srv.JobResumes(); n != 1 {
		t.Errorf("JobResumes = %d, want 1 (the resume was attempted)", n)
	}
	if n := srv.ColdRetries(); n != 1 {
		t.Errorf("ColdRetries = %d, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".ckpt")); !os.IsNotExist(err) {
		t.Errorf("corrupt blob not cleaned up (err=%v)", err)
	}
}

// TestColdRetriesCountExactlyOncePerFallback: the cold_retries_total
// counter is per-fallback accounting, not a boolean — two jobs that each
// discard a corrupt snapshot must advance it to exactly 2, once per failed
// restore, and the Prometheus endpoint must report the same figure.
func TestColdRetriesCountExactlyOncePerFallback(t *testing.T) {
	scA := resumeScenario
	scB := resumeScenario
	scB.Seed = scA.Seed + 1 // distinct cache key, so the second job really runs

	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{SnapshotDir: dir, SnapshotEvery: resumeCadence})
	for i, sc := range []exp.Scenario{scA, scB} {
		blob := midRunBlob(t, sc)
		key := ScenarioCacheKey("test", sc, network.DefaultParams())
		if err := os.WriteFile(filepath.Join(dir, key+".ckpt"), blob[:len(blob)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		runScenarioSync(t, ts.URL, sc)
		if n := srv.ColdRetries(); n != int64(i+1) {
			t.Fatalf("after fallback %d: ColdRetries = %d, want %d", i+1, n, i+1)
		}
	}
	if n := srv.JobResumes(); n != 2 {
		t.Errorf("JobResumes = %d, want 2 (both restores were attempted)", n)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, resp))
	if want := "sweepd_job_cold_retries_total 2"; !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q:\n%s", want, metrics)
	}
}

// TestExperimentJobsNotSnapshotted: experiment sweeps bypass snapshot
// persistence entirely — the snapshot dir stays empty and no resume is
// counted.
func TestExperimentJobsNotSnapshotted(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{SnapshotDir: dir, SnapshotEvery: 100})
	resp := postJSON(t, ts.URL+"/api/v1/run", `{"exp":"E1","quick":true}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d: %s", resp.StatusCode, body)
	}
	if n := srv.SnapshotsTaken(); n != 0 {
		t.Errorf("experiment sweep persisted %d snapshots", n)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(files) != 0 {
		t.Errorf("experiment sweep wrote files to the snapshot dir: %v", files)
	}
}
