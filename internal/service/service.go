package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/exp"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/stats"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Queue is the bounded job-queue capacity beyond the workers
	// themselves (default 64). A full queue sheds load: 429 + Retry-After.
	Queue int
	// Workers is the number of jobs executed concurrently (default 2).
	// Each job additionally fans its sweep points across JobsPerRun cores,
	// so total parallelism is Workers × JobsPerRun.
	Workers int
	// JobsPerRun is exp.Options.Jobs for each job (default 0: GOMAXPROCS).
	JobsPerRun int
	// CacheBytes is the result cache budget (default 256 MiB; negative
	// disables caching, 0 selects the default).
	CacheBytes int64
	// CacheStore, when non-nil, is the cache's persistence backend and
	// CacheBytes is ignored (the store was built with its own budget). This
	// is the storage-plugin seam: cmd/sweepd passes a cache.DiskStore here
	// for -cache-dir, so warm results survive restarts; tests pass
	// purpose-built stores. The server owns the store from here on and
	// closes it in Close.
	CacheStore cache.Store
	// Timeout is the default and maximum per-job runtime (default 10m).
	Timeout time.Duration
	// Version tags cache keys with the code build (default "dev"): results
	// cached by one build are invisible to another.
	Version string
	// MaxJobs caps the job registry; oldest terminal jobs are pruned
	// (default 1024).
	MaxJobs int
	// SnapshotDir, when non-empty, persists mid-run simulator snapshots of
	// scenario jobs to this directory (one atomically written file per
	// job, keyed by cache key). A server restarted after a crash resumes a
	// resubmitted scenario from its last persisted boundary instead of
	// from t=0, byte-identically; the snapshot is deleted when the job
	// completes. Experiment sweeps are not snapshotted — a sweep is many
	// short simulations, and its natural unit of retry is the point.
	SnapshotDir string
	// SnapshotEvery is the event cadence for scenario-job snapshots
	// (default 100000; only meaningful with SnapshotDir or
	// PublishSnapshot).
	SnapshotEvery int64
	// PublishSnapshot, when non-nil, receives every scenario-job snapshot
	// (cache key + sealed blob) as it is taken, in addition to any local
	// SnapshotDir persistence. A cluster worker points this at its
	// coordinator so that if the worker dies, the coordinator can ship the
	// last blob to whichever worker inherits the job. The callback runs on
	// the job's goroutine between simulation events — implementations that
	// talk to the network should hand the blob off asynchronously.
	PublishSnapshot func(key string, blob []byte)
}

func (c Config) withDefaults() Config {
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Minute
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 100_000
	}
	return c
}

// Server serves experiment sweeps over HTTP. Construct with New, expose
// with Handler, stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg   Config
	cache *cache.Cache
	reg   *registry
	mux   *http.ServeMux
	snaps *snapshotStore // nil unless Config.SnapshotDir is set

	queueMu  sync.RWMutex // excludes submits while the queue closes
	queue    chan *Job
	draining atomic.Bool
	workers  sync.WaitGroup
	inFlight sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	nextID atomic.Int64

	// metrics
	reqMu       sync.Mutex
	reqCounts   map[string]*stats.Counter // "path|code" → count
	httpLat     *stats.LatencyHist
	jobLat      *stats.LatencyHist
	jobsByEnd   map[JobState]*stats.Counter
	queueDepth  stats.Gauge
	running     stats.Gauge
	simEvents   stats.Counter
	jobResumes  stats.Counter // scenario jobs resumed from a persisted snapshot
	snapsTaken  stats.Counter // snapshots persisted to SnapshotDir
	snapErrors  stats.Counter // snapshot persist failures (job unaffected)
	coldRetries stats.Counter // resumes that fell back to a cold run
	started     time.Time
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := cache.New(cfg.CacheBytes)
	if cfg.CacheStore != nil {
		c = cache.NewWithStore(cfg.CacheStore)
	}
	s := &Server{
		cfg:        cfg,
		cache:      c,
		reg:        newRegistry(cfg.MaxJobs),
		queue:      make(chan *Job, cfg.Queue),
		baseCtx:    ctx,
		baseCancel: cancel,
		reqCounts:  make(map[string]*stats.Counter),
		httpLat:    stats.NewLatencyHist(1e-6, 3600, 240),
		jobLat:     stats.NewLatencyHist(1e-6, 3600, 240),
		jobsByEnd: map[JobState]*stats.Counter{
			StateDone:     new(stats.Counter),
			StateFailed:   new(stats.Counter),
			StateRejected: new(stats.Counter),
		},
		started: time.Now(),
	}
	if cfg.SnapshotDir != "" {
		s.snaps = newSnapshotStore(cfg.SnapshotDir)
	}
	s.mux = s.buildMux()
	for w := 0; w < cfg.Workers; w++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler (API, health, metrics, pprof).
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the job pipeline down: new submissions get 503,
// queued jobs are rejected, jobs already running finish (bounded by ctx —
// when it expires remaining runs are cancelled and Drain returns its
// error). Safe to call once; HTTP handlers stay mounted so clients can
// still fetch results of completed jobs after the drain.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	// Close the queue under the write lock: submitters hold the read lock
	// for the draining-check + send, so nobody can send on a closed chan.
	s.queueMu.Lock()
	close(s.queue)
	s.queueMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait() // workers reject the queued backlog, finish running jobs
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // cut running jobs loose
		<-done
		return ctx.Err()
	}
}

// Close shuts down immediately: running jobs are cancelled and the cache's
// backing store is released (a disk-backed store syncs its log here, so
// what was cached is warm on the next start).
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Drain(ctx)
	s.cache.Close()
}

// submit validates, registers, and enqueues a job. jobCtx is the context
// the run itself should inherit (the server base context for async jobs,
// the request context for synchronous ones).
func (s *Server) submit(jobCtx context.Context, req SweepRequest) (*Job, error) {
	if _, _, err := req.resolve(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(jobCtx, req.timeout(s.cfg.Timeout))
	id := "j" + strconv.FormatInt(s.nextID.Add(1), 10)
	job := newJob(id, req, ctx, cancel)

	s.queueMu.RLock()
	defer s.queueMu.RUnlock()
	if s.draining.Load() {
		cancel()
		return nil, errDraining
	}
	select {
	case s.queue <- job:
		s.queueDepth.Add(1)
		s.reg.add(job)
		return job, nil
	default:
		cancel()
		return nil, errQueueFull
	}
}

// worker drains the queue until Drain closes it. Jobs dequeued after the
// drain began are rejected without running.
func (s *Server) worker() {
	defer s.workers.Done()
	for job := range s.queue {
		s.queueDepth.Add(-1)
		if s.draining.Load() {
			job.finish(StateRejected, nil, cache.Computed, errDraining)
			s.jobsByEnd[StateRejected].Inc()
			continue
		}
		s.runJob(job)
	}
}

// runJob executes one job through the cache: hit → stored bytes, miss →
// run the experiment with the job's context threaded into the sweep
// worker pool, concurrent identical request → wait and share.
func (s *Server) runJob(job *Job) {
	s.inFlight.Add(1)
	s.running.Add(1)
	defer func() {
		s.running.Add(-1)
		s.inFlight.Done()
	}()
	job.setRunning()
	start := time.Now()

	e, opts, err := job.Req.resolve()
	if err != nil { // unreachable: submit resolved once already
		job.finish(StateFailed, nil, cache.Computed, err)
		s.jobsByEnd[StateFailed].Inc()
		return
	}
	key := cache.Key(s.cfg.Version, opts.CacheFields(e.ID))
	if sc := job.Req.Scenario; sc != nil {
		// Scenarios are self-describing: the axis assignment and seed are
		// the address, plus the resolved network preset. Options fields
		// are pinned to defaults for scenario requests (resolve enforces
		// it), so nothing result-determining escapes the key.
		key = ScenarioCacheKey(s.cfg.Version, *sc, opts.Net)
	}
	val, src, err := s.cache.GetOrCompute(job.ctx, key, func(ctx context.Context) ([]byte, error) {
		var events int64
		opts.Ctx = ctx
		opts.Jobs = s.cfg.JobsPerRun
		opts.Events = &events
		if job.Req.Scenario != nil && (s.snaps != nil || s.cfg.PublishSnapshot != nil) {
			// Persist the latest snapshot as the simulation progresses; a
			// server killed mid-run leaves the blob behind (and/or at the
			// coordinator), and the next submission of this job (same key)
			// resumes from it.
			opts.SnapshotEvery = s.cfg.SnapshotEvery
			opts.OnSnapshot = func(snap sim.Snapshot) {
				if s.snaps != nil {
					if serr := s.snaps.save(key, snap.Blob); serr != nil {
						s.snapErrors.Inc()
					} else {
						s.snapsTaken.Inc()
					}
				}
				if s.cfg.PublishSnapshot != nil {
					s.cfg.PublishSnapshot(key, snap.Blob)
				}
			}
		}
		if job.Req.Scenario != nil {
			// A blob shipped in the request (a coordinator re-dispatching a
			// dead worker's job) outranks the local store: it is the most
			// recent boundary anyone persisted for this key.
			if blob := job.Req.Resume; blob != nil {
				opts.ResumeFrom = blob
				s.jobResumes.Inc()
			} else if s.snaps != nil {
				if blob := s.snaps.load(key); blob != nil {
					opts.ResumeFrom = blob
					s.jobResumes.Inc()
				}
			}
		}
		tables, err := e.Run(opts)
		if err != nil && opts.ResumeFrom != nil && ctx.Err() == nil {
			// The snapshot did not carry the run (corrupt blob, or written
			// by an incompatible build): discard it and run cold. Resume is
			// an optimization, never a dependency.
			if s.snaps != nil {
				s.snaps.drop(key)
			}
			s.coldRetries.Inc()
			opts.ResumeFrom = nil
			tables, err = e.Run(opts)
		}
		s.simEvents.Add(events)
		if err != nil {
			return nil, err
		}
		if s.snaps != nil && opts.SnapshotEvery > 0 {
			s.snaps.drop(key)
		}
		return encodeResult(e, tables)
	})

	s.jobLat.Observe(time.Since(start).Seconds())
	if err != nil {
		job.finish(StateFailed, nil, src, err)
		s.jobsByEnd[StateFailed].Inc()
		return
	}
	job.finish(StateDone, val, src, nil)
	s.jobsByEnd[StateDone].Inc()
}

// retryAfterSeconds estimates how long a client should back off when the
// queue is full: the time for the backlog ahead of a retry to drain across
// the worker pool, plus one slot for the retry itself, at the recent mean
// job latency — (depth/workers + 1) × mean. A constant here under-advises
// whenever the queue is deep (clients hammer a still-full queue) and
// over-advises on an empty-but-bursty one. Clamped to [1, 60] seconds:
// Retry-After is a hint, not a reservation, and an hour-long backoff would
// outlive most clients. With no completed jobs yet there is no latency
// estimate, so the floor applies.
func (s *Server) retryAfterSeconds() int {
	mean := s.jobLat.Mean()
	if math.IsNaN(mean) || mean <= 0 {
		return 1
	}
	backlog := float64(s.queueDepth.Value())/float64(s.cfg.Workers) + 1
	secs := math.Ceil(backlog * mean)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}

// CacheStats exposes the result cache counters (tests and cmd/sweepd logs).
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// SimEvents returns the total simulation events executed by fresh runs —
// cache hits and shared results add nothing, which is exactly what the
// dedup tests assert.
func (s *Server) SimEvents() int64 { return s.simEvents.Value() }

// JobResumes returns how many scenario jobs resumed from a persisted
// snapshot instead of running from t=0.
func (s *Server) JobResumes() int64 { return s.jobResumes.Value() }

// SnapshotsTaken returns how many job snapshots were persisted to
// Config.SnapshotDir.
func (s *Server) SnapshotsTaken() int64 { return s.snapsTaken.Value() }

// ColdRetries returns how many resume attempts fell back to a cold run
// because the persisted snapshot failed to restore.
func (s *Server) ColdRetries() int64 { return s.coldRetries.Value() }

// --- HTTP layer ---

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	h := func(pattern string, fn http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, fn))
	}
	h("GET /healthz", s.handleHealthz)
	h("GET /metrics", s.handleMetrics)
	h("GET /api/v1/experiments", s.handleExperiments)
	h("POST /api/v1/jobs", s.handleSubmit)
	h("GET /api/v1/jobs", s.handleListJobs)
	h("GET /api/v1/jobs/{id}", s.handleJobStatus)
	h("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	h("GET /api/v1/jobs/{id}/events", s.handleJobEvents)
	h("POST /api/v1/run", s.handleRunSync)
	// Profiling: the standard pprof handlers, reachable at /debug/pprof/.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// statusRecorder captures the response code for request metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (SSE) through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument counts requests by (route, status) and observes latency.
func (s *Server) instrument(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.httpLat.Observe(time.Since(start).Seconds())
		key := pattern + "|" + strconv.Itoa(rec.code)
		s.reqMu.Lock()
		c, ok := s.reqCounts[key]
		if !ok {
			c = new(stats.Counter)
			s.reqCounts[key] = c
		}
		s.reqMu.Unlock()
		c.Inc()
	})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the uniform error response.
type errorBody struct {
	Error string `json:"error"`
}

// writeSubmitError maps submit/validation errors onto status codes.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	var unknown *unknownExpError
	switch {
	case errors.As(err, &unknown):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// Health is the /healthz body: liveness plus the load signals a
// coordinator folds into its cross-shard Retry-After estimate. Depth and
// capacity describe the job queue; MeanJobSeconds is 0 until a job has
// completed.
type Health struct {
	Status         string  `json:"status"` // "ok", or "draining" (with 503)
	QueueDepth     int     `json:"queue_depth"`
	QueueCapacity  int     `json:"queue_capacity"`
	Running        int     `json:"running"`
	Workers        int     `json:"workers"`
	MeanJobSeconds float64 `json:"mean_job_seconds"`
}

func (s *Server) health() Health {
	h := Health{
		Status:        "ok",
		QueueDepth:    int(s.queueDepth.Value()),
		QueueCapacity: s.cfg.Queue,
		Running:       int(s.running.Value()),
		Workers:       s.cfg.Workers,
	}
	if mean := s.jobLat.Mean(); !math.IsNaN(mean) && mean > 0 {
		h.MeanJobSeconds = mean
	}
	if s.draining.Load() {
		h.Status = "draining"
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if h.Status != "ok" {
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Desc  string `json:"desc"`
		Bench string `json:"bench"`
	}
	var out []expInfo
	for _, e := range exp.All() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Desc: e.Desc, Bench: e.Bench})
	}
	writeJSON(w, http.StatusOK, out)
}

// submitResponse is the 202 body for POST /api/v1/jobs.
type submitResponse struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r.Body)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	job, err := s.submit(s.baseCtx, req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:        job.ID,
		StatusURL: "/api/v1/jobs/" + job.ID,
		ResultURL: "/api/v1/jobs/" + job.ID + "/result",
		EventsURL: "/api/v1/jobs/" + job.ID + "/events",
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.list())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, job.snapshot())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	raw, done := job.resultBytes()
	if !done {
		st := job.snapshot()
		msg := fmt.Sprintf("job %s is %s, result not available", job.ID, st.State)
		if st.Error != "" {
			msg += ": " + st.Error
		}
		writeJSON(w, http.StatusConflict, errorBody{Error: msg})
		return
	}
	s.writeResult(w, r, job, raw)
}

// writeResult serves stored result bytes in the requested format. JSON is
// the stored bytes verbatim — the byte-identity the cache guarantees is
// exactly what goes on the wire.
func (s *Server) writeResult(w http.ResponseWriter, r *http.Request, job *Job, raw []byte) {
	st := job.snapshot()
	w.Header().Set("X-Sweepd-Job", job.ID)
	w.Header().Set("X-Sweepd-Source", st.Source)
	w.Header().Set("X-Sweepd-Elapsed-Ms", strconv.FormatFloat(st.ElapsedMs, 'f', 3, 64))
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	case "csv", "text":
		res, err := decodeResult(raw)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if format == "csv" {
			res.CSV(w)
		} else {
			fmt.Fprint(w, res.Text())
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown format %q (json|csv|text)", format)})
	}
}

// handleJobEvents streams job state transitions as server-sent events
// until the job is terminal or the client disconnects. Each event is
// `event: state` with a JobStatus JSON payload; the terminal state is
// always the last event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(st JobStatus) {
		payload, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", payload)
		flusher.Flush()
	}
	last := job.snapshot()
	send(last)
	if last.State.terminal() {
		return
	}
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			send(job.snapshot())
			return
		case <-ticker.C:
			if st := job.snapshot(); st.State != last.State {
				last = st
				send(st)
			}
		}
	}
}

// handleRunSync submits a job and waits for it, returning the result body
// directly — the one-request path the CI smoke test and shell users take.
// The run inherits the request context: a client that disconnects cancels
// its in-flight sweep (unless a concurrent identical request shares it, in
// which case that request's own wait decides its fate).
func (s *Server) handleRunSync(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r.Body)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	job, err := s.submit(r.Context(), req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// Client gone; the job context (derived from the request) is
		// cancelled with it, aborting the sweep between points.
		return
	}
	st := job.snapshot()
	raw, done := job.resultBytes()
	if !done {
		code := http.StatusInternalServerError
		if st.State == StateRejected {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errorBody{Error: fmt.Sprintf("job %s %s: %s", job.ID, st.State, st.Error)})
		return
	}
	s.writeResult(w, r, job, raw)
}

// handleMetrics renders Prometheus text exposition from internal/stats
// primitives: request/job counters, queue and flight gauges, cache
// effectiveness, and latency quantiles.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP sweepd_up Whether the service is accepting work (0 while draining).\n")
	p("# TYPE sweepd_up gauge\n")
	up := 1
	if s.draining.Load() {
		up = 0
	}
	p("sweepd_up %d\n", up)
	p("# TYPE sweepd_uptime_seconds counter\n")
	p("sweepd_uptime_seconds %.3f\n", time.Since(s.started).Seconds())

	p("# HELP sweepd_requests_total HTTP requests by route and status code.\n")
	p("# TYPE sweepd_requests_total counter\n")
	s.reqMu.Lock()
	keys := make([]string, 0, len(s.reqCounts))
	for k := range s.reqCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		key string
		n   int64
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{k, s.reqCounts[k].Value()})
	}
	s.reqMu.Unlock()
	for _, row := range rows {
		var route, code string
		if i := strings.LastIndexByte(row.key, '|'); i >= 0 {
			route, code = row.key[:i], row.key[i+1:]
		}
		p("sweepd_requests_total{route=%q,code=%q} %d\n", route, code, row.n)
	}

	p("# HELP sweepd_jobs_total Jobs by terminal state.\n")
	p("# TYPE sweepd_jobs_total counter\n")
	for _, st := range []JobState{StateDone, StateFailed, StateRejected} {
		p("sweepd_jobs_total{state=%q} %d\n", string(st), s.jobsByEnd[st].Value())
	}
	p("# TYPE sweepd_queue_depth gauge\n")
	p("sweepd_queue_depth %d\n", s.queueDepth.Value())
	p("# TYPE sweepd_queue_capacity gauge\n")
	p("sweepd_queue_capacity %d\n", s.cfg.Queue)
	p("# TYPE sweepd_running_jobs gauge\n")
	p("sweepd_running_jobs %d\n", s.running.Value())
	p("# TYPE sweepd_workers gauge\n")
	p("sweepd_workers %d\n", s.cfg.Workers)
	p("# TYPE sweepd_gomaxprocs gauge\n")
	p("sweepd_gomaxprocs %d\n", runtime.GOMAXPROCS(0))

	p("# HELP sweepd_sim_events_total Simulation events executed by fresh (uncached) runs.\n")
	p("# TYPE sweepd_sim_events_total counter\n")
	p("sweepd_sim_events_total %d\n", s.simEvents.Value())

	p("# HELP sweepd_job_snapshots_total Mid-run job snapshots persisted to the snapshot dir.\n")
	p("# TYPE sweepd_job_snapshots_total counter\n")
	p("sweepd_job_snapshots_total %d\n", s.snapsTaken.Value())
	p("# TYPE sweepd_job_resumes_total counter\n")
	p("sweepd_job_resumes_total %d\n", s.jobResumes.Value())
	p("# TYPE sweepd_job_snapshot_errors_total counter\n")
	p("sweepd_job_snapshot_errors_total %d\n", s.snapErrors.Value())
	p("# TYPE sweepd_job_cold_retries_total counter\n")
	p("sweepd_job_cold_retries_total %d\n", s.coldRetries.Value())

	cs := s.cache.Stats()
	p("# HELP sweepd_cache_hits_total Requests served from the result cache.\n")
	p("# TYPE sweepd_cache_hits_total counter\n")
	p("sweepd_cache_hits_total %d\n", cs.Hits)
	p("# TYPE sweepd_cache_misses_total counter\n")
	p("sweepd_cache_misses_total %d\n", cs.Misses)
	p("# TYPE sweepd_cache_shared_total counter\n")
	p("sweepd_cache_shared_total %d\n", cs.Shared)
	p("# TYPE sweepd_cache_evictions_total counter\n")
	p("sweepd_cache_evictions_total %d\n", cs.Evictions)
	p("# TYPE sweepd_cache_rejected_total counter\n")
	p("sweepd_cache_rejected_total %d\n", cs.Rejected)
	p("# TYPE sweepd_cache_entries gauge\n")
	p("sweepd_cache_entries %d\n", cs.Entries)
	p("# TYPE sweepd_cache_bytes gauge\n")
	p("sweepd_cache_bytes %d\n", cs.Bytes)
	p("# TYPE sweepd_cache_budget_bytes gauge\n")
	p("sweepd_cache_budget_bytes %d\n", cs.Budget)
	p("# HELP sweepd_cache_disk_hits_total Store lookups served by a digest-verified disk read (disk-backed stores only).\n")
	p("# TYPE sweepd_cache_disk_hits_total counter\n")
	p("sweepd_cache_disk_hits_total %d\n", cs.DiskHits)
	p("# HELP sweepd_cache_disk_corrupt_total Disk cache records rejected by verification instead of being served.\n")
	p("# TYPE sweepd_cache_disk_corrupt_total counter\n")
	p("sweepd_cache_disk_corrupt_total %d\n", cs.Corrupt)

	writeLatency := func(name string, h *stats.LatencyHist) {
		p("# HELP %s Latency quantiles (log-binned histogram).\n", name)
		p("# TYPE %s summary\n", name)
		if h.Count() > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				p("%s{quantile=\"%g\"} %.6g\n", name, q, h.Quantile(q))
			}
		}
		p("%s_sum %.6g\n", name, h.Sum())
		p("%s_count %d\n", name, h.Count())
	}
	writeLatency("sweepd_job_duration_seconds", s.jobLat)
	writeLatency("sweepd_http_request_duration_seconds", s.httpLat)
}
