package service

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// DLQ state machine (see DESIGN.md S27):
//
//	dispatch fails retryably ──► retrying ──(success)──► removed
//	                               │  ▲
//	                  (attempts    │  │ POST /api/v1/dlq/{id}/requeue
//	                   exhausted)  ▼  │
//	                             parked
//
// An entry exists only while its point is in trouble: on a healthy
// cluster the queue drains to zero, which is exactly what the chaos
// suite asserts. Parked entries are the dead letters proper — kept for
// inspection and manual requeue; retrying entries are the visible tail
// of automatic recovery in flight.

// DLQState is the lifecycle of a dead-letter entry.
type DLQState string

const (
	// DLQRetrying: the coordinator is re-dispatching with backoff.
	DLQRetrying DLQState = "retrying"
	// DLQParked: bounded retries exhausted; waits for a manual requeue.
	DLQParked DLQState = "parked"
)

// DLQEntry is the wire form of one dead-letter entry (GET /api/v1/dlq).
type DLQEntry struct {
	ID  string `json:"id"`
	Key string `json:"key"` // the point's cache key: stable across retries
	// Spec names what failed: the experiment ID or scenario spec string.
	Spec        string    `json:"spec"`
	State       DLQState  `json:"state"`
	Attempts    int       `json:"attempts"`
	MaxAttempts int       `json:"max_attempts"`
	LastError   string    `json:"last_error,omitempty"`
	NextRetry   time.Time `json:"next_retry"`
	Created     time.Time `json:"created"`
}

// dlqEntry is the live entry behind a DLQEntry snapshot. The request is
// re-marshaled on every dispatch so a freshly shipped snapshot blob rides
// along. done closes exactly once, the first time the entry settles —
// recovered (result set) or parked (result nil) — releasing the sync
// handler that bore the original failure plus any identical requests that
// piled up behind it. A requeued entry that later recovers settles again
// with no waiters to wake, which is fine: settleOnce keeps the channel
// single-shot and the maps are authoritative for listing.
type dlqEntry struct {
	id      string
	key     string
	spec    string
	req     SweepRequest
	created time.Time

	mu        sync.Mutex
	state     DLQState
	attempts  int
	lastErr   string
	nextRetry time.Time
	result    *proxyResult

	settleOnce sync.Once
	done       chan struct{}
}

func (e *dlqEntry) snapshot(max int) DLQEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := DLQEntry{
		ID: e.id, Key: e.key, Spec: e.spec, State: e.state,
		Attempts: e.attempts, MaxAttempts: max,
		LastError: e.lastErr, Created: e.created,
	}
	if e.state == DLQRetrying {
		out.NextRetry = e.nextRetry
	}
	return out
}

// noteAttempt records the start of attempt n and when the next one would
// be due if this one fails.
func (e *dlqEntry) noteAttempt(n int, next time.Time) {
	e.mu.Lock()
	e.attempts = n
	e.nextRetry = next
	e.mu.Unlock()
}

// noteError records a failed attempt's error.
func (e *dlqEntry) noteError(msg string) {
	e.mu.Lock()
	e.lastErr = msg
	e.mu.Unlock()
}

// settle publishes the terminal outcome of this recovery cycle (res nil
// means parked) and wakes waiters, once.
func (e *dlqEntry) settle(res *proxyResult) {
	e.settleOnce.Do(func() {
		e.mu.Lock()
		e.result = res
		e.mu.Unlock()
		close(e.done)
	})
}

// outcome reads the settled result (nil when the entry parked).
func (e *dlqEntry) outcome() *proxyResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.result
}

// dlq is the coordinator's dead-letter queue: entries indexed by id, with
// at most one live retrying entry per cache key so identical failing
// points share one recovery loop instead of stampeding the survivors.
type dlq struct {
	mu     sync.Mutex
	nextID int
	byID   map[string]*dlqEntry
	byKey  map[string]*dlqEntry
}

func newDLQ() *dlq {
	return &dlq{byID: make(map[string]*dlqEntry), byKey: make(map[string]*dlqEntry)}
}

// enter returns the live entry for key, creating one if none exists. The
// second return is true when this call created the entry — the creator
// owns the retry loop; joiners just wait on done.
func (q *dlq) enter(key, spec string, req SweepRequest, now time.Time) (*dlqEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.byKey[key]; ok {
		return e, false
	}
	q.nextID++
	e := &dlqEntry{
		id: "dlq" + strconv.Itoa(q.nextID), key: key, spec: spec, req: req,
		created: now, state: DLQRetrying, done: make(chan struct{}),
	}
	q.byID[e.id] = e
	q.byKey[key] = e
	return e, true
}

// resolve removes a recovered entry and publishes its result to waiters.
func (q *dlq) resolve(e *dlqEntry, res *proxyResult) {
	q.mu.Lock()
	delete(q.byID, e.id)
	if q.byKey[e.key] == e {
		delete(q.byKey, e.key)
	}
	q.mu.Unlock()
	e.settle(res)
}

// park marks an entry's retries exhausted and releases its waiters with a
// nil result. The key slot is freed — a parked letter must not absorb
// fresh submissions of the same point into silence — but the entry stays
// listed by id until requeued or the coordinator restarts.
func (q *dlq) park(e *dlqEntry, lastErr string) {
	q.mu.Lock()
	if q.byKey[e.key] == e {
		delete(q.byKey, e.key)
	}
	q.mu.Unlock()
	e.mu.Lock()
	e.state = DLQParked
	e.lastErr = lastErr
	e.nextRetry = time.Time{}
	e.mu.Unlock()
	e.settle(nil)
}

// requeue flips a parked entry back to retrying with a fresh attempt
// budget. Returns false when no parked entry has this id (the caller's
// 404/409). If a newer live entry owns the key meanwhile, the requeued
// one still retries — worst case both recover and resolve idempotently.
func (q *dlq) requeue(id string, now time.Time) (*dlqEntry, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.byID[id]
	if !ok {
		return nil, false
	}
	e.mu.Lock()
	parked := e.state == DLQParked
	if parked {
		e.state = DLQRetrying
		e.attempts = 0
		e.lastErr = ""
		e.nextRetry = now
	}
	e.mu.Unlock()
	if !parked {
		return nil, false
	}
	if _, taken := q.byKey[e.key]; !taken {
		q.byKey[e.key] = e
	}
	return e, true
}

// list snapshots every entry, oldest first.
func (q *dlq) list(max int) []DLQEntry {
	q.mu.Lock()
	entries := make([]*dlqEntry, 0, len(q.byID))
	for _, e := range q.byID {
		entries = append(entries, e)
	}
	q.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		// Numeric id order; the ids share the "dlq" prefix.
		return len(entries[i].id) < len(entries[j].id) ||
			(len(entries[i].id) == len(entries[j].id) && entries[i].id < entries[j].id)
	})
	out := make([]DLQEntry, len(entries))
	for i, e := range entries {
		out[i] = e.snapshot(max)
	}
	return out
}

// depth counts live entries by state.
func (q *dlq) depth() (retrying, parked int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range q.byID {
		e.mu.Lock()
		if e.state == DLQParked {
			parked++
		} else {
			retrying++
		}
		e.mu.Unlock()
	}
	return retrying, parked
}
