package service

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
)

func scenarioBody(sc exp.Scenario) string {
	return fmt.Sprintf(`{"scenario":{"workload":%q,"ranks":%d,"protocol":%q,"failure_law":%q,"storage":%q,"noise":%q,"seed":%d}}`,
		sc.Workload, sc.Ranks, sc.Protocol, sc.FailureLaw, sc.Storage, sc.Noise, sc.Seed)
}

// The campaign's core consistency property, asserted at the service
// boundary: a fresh sweepd run of a scenario, the subsequent cache hit,
// and a local run encoded with EncodeScenarioResult are all byte-identical.
func TestScenarioCacheConsistency(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := exp.Scenario{Workload: "stencil2d", Ranks: 8, Protocol: "coordinated",
		FailureLaw: "exp", Storage: "pfs", Noise: "periodic", Seed: 7}

	resp := postJSON(t, ts.URL+"/api/v1/run", scenarioBody(sc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	if src := resp.Header.Get("X-Sweepd-Source"); src != "computed" {
		t.Errorf("fresh run source = %q, want computed", src)
	}
	fresh := readBody(t, resp)

	resp = postJSON(t, ts.URL+"/api/v1/run", scenarioBody(sc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached run: status %d", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Sweepd-Source"); src != "hit" {
		t.Errorf("second run source = %q, want hit", src)
	}
	hit := readBody(t, resp)
	if !bytes.Equal(fresh, hit) {
		t.Fatalf("cache hit differs from fresh run:\n--- fresh ---\n%s\n--- hit ---\n%s", fresh, hit)
	}

	tables, err := sc.Run(exp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	local, err := EncodeScenarioResult(sc, tables)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, local) {
		t.Fatalf("local run differs from service result:\n--- local ---\n%s\n--- service ---\n%s", local, fresh)
	}
}

// Scenario requests respect the format parameter like experiment requests.
func TestScenarioFormats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sc := exp.Scenario{Workload: "sweep", Ranks: 8, Protocol: "none",
		FailureLaw: "none", Storage: "none", Noise: "none", Seed: 3}
	resp := postJSON(t, ts.URL+"/api/v1/run?format=text", scenarioBody(sc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readBody(t, resp))
	}
	text := string(readBody(t, resp))
	for _, want := range []string{"Campaign campaign:sweep/p8/none/none/none/none@3", "makespan_ns", "validate"} {
		if !strings.Contains(text, want) {
			t.Errorf("text format missing %q:\n%s", want, text)
		}
	}
}

// Malformed scenario requests are client errors, with messages naming the
// offending axis or conflict.
func TestScenarioRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		errHas string
	}{
		{"both exp and scenario",
			`{"exp":"E1","scenario":{"workload":"sweep","ranks":8,"protocol":"none","failure_law":"none","storage":"none","noise":"none"}}`,
			"both an experiment"},
		{"scenario with seed",
			`{"seed":1,"scenario":{"workload":"sweep","ranks":8,"protocol":"none","failure_law":"none","storage":"none","noise":"none"}}`,
			"do not apply"},
		{"scenario with quick",
			`{"quick":true,"scenario":{"workload":"sweep","ranks":8,"protocol":"none","failure_law":"none","storage":"none","noise":"none"}}`,
			"do not apply"},
		{"unknown protocol",
			`{"scenario":{"workload":"sweep","ranks":8,"protocol":"raft","failure_law":"none","storage":"none","noise":"none"}}`,
			"unknown protocol"},
		{"failures without protocol",
			`{"scenario":{"workload":"sweep","ranks":8,"protocol":"none","failure_law":"exp","storage":"none","noise":"none"}}`,
			"need a checkpoint protocol"},
		{"unknown workload",
			`{"scenario":{"workload":"quicksort","ranks":8,"protocol":"none","failure_law":"none","storage":"none","noise":"none"}}`,
			"unknown workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/api/v1/run", tc.body)
			body := string(readBody(t, resp))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.errHas) {
				t.Errorf("error %q does not mention %q", body, tc.errHas)
			}
		})
	}
}

// ScenarioCacheKey separates scenarios and never collides with experiment
// keys; the network preset is part of the address.
func TestScenarioCacheKey(t *testing.T) {
	sc := exp.Scenario{Workload: "cg", Ranks: 16, Protocol: "partner",
		FailureLaw: "none", Storage: "burst", Noise: "none", Seed: 9}
	a := ScenarioCacheKey("v1", sc, network.DefaultParams())
	if a != ScenarioCacheKey("v1", sc, network.DefaultParams()) {
		t.Fatal("equal scenarios produced different keys")
	}
	if a == ScenarioCacheKey("v2", sc, network.DefaultParams()) {
		t.Error("version does not separate keys")
	}
	if a == ScenarioCacheKey("v1", sc, network.EthernetClassParams()) {
		t.Error("network preset does not separate keys")
	}
	other := sc
	other.Seed = 10
	if a == ScenarioCacheKey("v1", other, network.DefaultParams()) {
		t.Error("seed does not separate keys")
	}
}
