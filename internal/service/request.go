// Package service implements the sweepd HTTP service: experiment sweeps as
// jobs over a bounded queue and worker pool, fronted by a content-addressed
// result cache (internal/cache) and instrumented with internal/stats
// metrics. cmd/sweepd is a thin flag-parsing wrapper around Server.
//
// The request path is: decode+validate a SweepRequest, address it
// (cache.Key over exp.Options.CacheFields), then either serve the cached
// bytes, join an identical in-flight computation, or run the experiment on
// a worker with the job's context threaded through the sweep pool. Full
// queue returns 429 with Retry-After; a draining server returns 503.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/exp"
	"checkpointsim/internal/network"
	"checkpointsim/internal/report"
	"checkpointsim/internal/storage"
)

// SweepRequest is the JSON body submitted to POST /api/v1/jobs and
// /api/v1/run. Zero values mean "the default the CLI would use": seed 42,
// full scale, default network preset, no storage model, no validation.
type SweepRequest struct {
	// Exp is the experiment ID (E1..E17). Required unless Scenario is set.
	Exp string `json:"exp,omitempty"`
	// Scenario, when non-nil, runs one campaign scenario (internal/exp
	// Scenario) instead of a named experiment. A scenario carries its whole
	// configuration — axes and seed — so Exp, Seed, Quick, and Storage must
	// be absent; Net still selects the network preset, and validation is
	// always on (campaign points are correctness probes).
	Scenario *exp.Scenario `json:"scenario,omitempty"`
	// Seed drives all randomness (default 42).
	Seed *uint64 `json:"seed,omitempty"`
	// Quick selects the reduced (bench/CI-scale) sweep.
	Quick bool `json:"quick,omitempty"`
	// Net names a network preset: "default", "capability", or "ethernet".
	Net string `json:"net,omitempty"`
	// Validate runs every simulation under the trace-conformance checker.
	Validate bool `json:"validate,omitempty"`
	// Storage, when non-nil, routes checkpoint writes through the
	// shared-storage model.
	Storage *StorageRequest `json:"storage,omitempty"`
	// TimeoutSec caps the job's runtime (0 = the server's default).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Resume is a sealed mid-run simulator snapshot (sim.Snapshot.Blob,
	// base64 on the wire) to resume a Scenario job from, shipped by a
	// coordinator re-dispatching a dead worker's job. It is a pure
	// execution hint: it never enters the cache key, and a blob that fails
	// to restore falls back to a cold run. Only valid with Scenario.
	Resume []byte `json:"resume_b64,omitempty"`
}

// StorageRequest mirrors cmd/sweep's storage flags, in GB/s.
type StorageRequest struct {
	AggregateGBps float64 `json:"aggregate_gbps,omitempty"`
	PerWriterGBps float64 `json:"per_writer_gbps,omitempty"`
	NodeGBps      float64 `json:"node_gbps,omitempty"`
	RanksPerNode  int     `json:"ranks_per_node,omitempty"`
}

// badRequestError marks client errors that map to 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// unknownExpError marks a well-formed request naming no experiment (404).
type unknownExpError struct{ id string }

func (e *unknownExpError) Error() string { return fmt.Sprintf("unknown experiment %q", e.id) }

// decodeRequest parses and validates a request body. Unknown fields are
// rejected — a typoed knob silently falling back to its default would
// return confidently wrong results.
func decodeRequest(r io.Reader) (SweepRequest, error) {
	var req SweepRequest
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, badf("malformed request body: %v", err)
	}
	if dec.More() {
		return req, badf("trailing data after request body")
	}
	return req, nil
}

// resolve validates the request and builds the experiment and fully
// resolved options it describes (Jobs/Events/Ctx are the server's to set).
// Scenario requests resolve to a synthetic experiment wrapping
// Scenario.Run; runJob addresses them by Scenario.CacheFields instead of
// Options.CacheFields.
func (req SweepRequest) resolve() (exp.Experiment, exp.Options, error) {
	var e exp.Experiment
	if sc := req.Scenario; sc != nil {
		if req.Exp != "" {
			return exp.Experiment{}, exp.Options{}, badf("request names both an experiment (%q) and a scenario", req.Exp)
		}
		if req.Seed != nil || req.Quick || req.Storage != nil {
			return exp.Experiment{}, exp.Options{}, badf("scenario requests carry their whole configuration; seed, quick, and storage do not apply")
		}
		if err := sc.Validate(); err != nil {
			return exp.Experiment{}, exp.Options{}, badf("bad scenario: %v", err)
		}
		e = ScenarioExperiment(*sc)
	} else {
		if req.Resume != nil {
			return exp.Experiment{}, exp.Options{}, badf("resume_b64 applies only to scenario requests")
		}
		if req.Exp == "" {
			return exp.Experiment{}, exp.Options{}, badf("missing experiment id")
		}
		var ok bool
		e, ok = exp.ByID(req.Exp)
		if !ok {
			return exp.Experiment{}, exp.Options{}, &unknownExpError{id: req.Exp}
		}
	}
	o := exp.DefaultOptions()
	if req.Seed != nil {
		o.Seed = *req.Seed
	}
	o.Quick = req.Quick
	o.Validate = req.Validate
	switch req.Net {
	case "", "default":
		o.Net = network.DefaultParams()
	case "capability":
		o.Net = network.CapabilityClassParams()
	case "ethernet":
		o.Net = network.EthernetClassParams()
	default:
		return exp.Experiment{}, exp.Options{}, badf("unknown network preset %q", req.Net)
	}
	if st := req.Storage; st != nil {
		o.Storage = storage.Params{
			AggregateBytesPerSec: st.AggregateGBps * 1e9,
			PerWriterBytesPerSec: st.PerWriterGBps * 1e9,
			NodeBytesPerSec:      st.NodeGBps * 1e9,
			RanksPerNode:         st.RanksPerNode,
		}
		if err := o.Storage.Validate(); err != nil {
			return exp.Experiment{}, exp.Options{}, badf("bad storage config: %v", err)
		}
	}
	if req.TimeoutSec < 0 {
		return exp.Experiment{}, exp.Options{}, badf("negative timeout_sec %v", req.TimeoutSec)
	}
	return e, o, nil
}

// timeout returns the per-job timeout the request asks for, defaulting to
// and capped by the server default (a client may shorten the leash, never
// lengthen it).
func (req SweepRequest) timeout(def time.Duration) time.Duration {
	if req.TimeoutSec <= 0 {
		return def
	}
	d := time.Duration(req.TimeoutSec * float64(time.Second))
	if d > def {
		return def
	}
	return d
}

// ScenarioExperiment wraps one campaign scenario as a synthetic experiment
// so the job pipeline (run, encode, format) treats scenarios and named
// experiments uniformly. The ID is the scenario's spec string.
func ScenarioExperiment(sc exp.Scenario) exp.Experiment {
	return exp.Experiment{
		ID:    sc.ID(),
		Title: "Campaign scenario",
		Desc:  "one point of the randomized scenario campaign",
		Run:   sc.Run,
	}
}

// ScenarioCacheKey is the content address runJob computes for a scenario
// request: exported so cmd/campaign can derive the exact key a sweepd with
// the same version would use, and print it for reproduction.
func ScenarioCacheKey(version string, sc exp.Scenario, net network.Params) string {
	return cache.Key(version, sc.CacheFields(net))
}

// EncodeScenarioResult produces the exact bytes a sweepd stores and serves
// for this scenario's completed run — the other half of the campaign's
// cache-consistency check: a local fresh run must byte-match the service's
// cached result.
func EncodeScenarioResult(sc exp.Scenario, tables []*report.Table) ([]byte, error) {
	return encodeResult(ScenarioExperiment(sc), tables)
}

// TableResult is the wire form of one report.Table. Cells are the
// formatted strings of the table, so decoding and re-adding them through
// report.Table.AddRow reproduces the rendered table byte-for-byte.
type TableResult struct {
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Notes []string   `json:"notes,omitempty"`
	Rows  [][]string `json:"rows"`
}

// Result is the wire form of one completed sweep: what cmd/sweep would
// have printed, structured. Its JSON encoding is the cached value — the
// content under the content address.
type Result struct {
	Exp    string        `json:"exp"`
	Title  string        `json:"title"`
	Tables []TableResult `json:"tables"`
}

// encodeResult serializes a completed run for the cache. Encoding is
// deterministic (fixed struct field order, pre-formatted cells), so equal
// runs produce equal bytes and the cache's byte-identity guarantee extends
// end to end.
func encodeResult(e exp.Experiment, tables []*report.Table) ([]byte, error) {
	res := Result{Exp: e.ID, Title: e.Title}
	for _, t := range tables {
		res.Tables = append(res.Tables, TableResult{
			Title: t.Title,
			Cols:  t.Cols,
			Notes: t.Notes,
			Rows:  t.Rows(),
		})
	}
	return json.Marshal(res)
}

// decodeResult parses cached result bytes.
func decodeResult(data []byte) (Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return res, fmt.Errorf("service: corrupt cached result: %w", err)
	}
	return res, nil
}

// table reconstructs a report.Table from its wire form.
func (tr TableResult) table() *report.Table {
	t := report.NewTable(tr.Title, tr.Cols...)
	for _, row := range tr.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = c
		}
		t.AddRow(cells...)
	}
	for _, n := range tr.Notes {
		t.AddNote("%s", n)
	}
	return t
}

// Text renders the result exactly as cmd/sweep prints the experiment
// (header line, aligned tables, blank line after each).
func (r Result) Text() string {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "### %s — %s\n", r.Exp, r.Title)
	for _, tr := range r.Tables {
		tr.table().Fprint(&sb)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV writes every table as CSV, separated by blank lines, matching the
// per-table files cmd/sweep -csv writes.
func (r Result) CSV(w io.Writer) error {
	for i, tr := range r.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := tr.table().WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
