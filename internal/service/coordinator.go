package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"checkpointsim/internal/cache"
	"checkpointsim/internal/exp"
	"checkpointsim/internal/stats"
)

// Coordinator fronts a cluster of sweepd workers. It owns no simulation
// work itself: every request is addressed by the same cache key a worker
// would compute, rendezvous-hashed (cache.PickNode) across the live
// worker set, and proxied. Because key→worker placement is sticky, each
// worker's cache and singleflight see every repeat of "its" points — the
// cluster behaves like one big sharded cache with no cross-worker
// duplication.
//
// Failure handling is the point of the design (DESIGN.md S27):
//
//   - A dispatch that fails retryably (transport error, 5xx) lands the
//     point in a dead-letter queue. A per-entry loop re-dispatches with
//     bounded exponential backoff to whichever worker the hash now
//     selects from the survivors; the waiting client is released when
//     the retry succeeds, with bytes identical to what the dead worker
//     would have served.
//   - Workers publish mid-run scenario snapshots to the coordinator
//     (POST /api/v1/snapshots/{key}). A re-dispatch of a scenario point
//     ships the latest blob as resume_b64, so the inheriting worker
//     resumes from the dead peer's last boundary instead of t=0 —
//     byte-identically, with a cold run as the fallback.
//   - 429 from a worker passes through, but with Retry-After recomputed
//     from cluster-wide queue depth (the single-worker estimate is
//     systematically short when the other shards are also deep).
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	mux    *http.ServeMux
	q      *dlq

	workers []*workerState // fixed membership; liveness varies

	blobMu    sync.Mutex
	blobs     map[string][]byte
	blobOrder []string // key insertion order, for cap eviction

	baseCtx    context.Context
	baseCancel context.CancelFunc
	closeOnce  sync.Once
	wg         sync.WaitGroup

	// metrics
	reqMu         sync.Mutex
	reqCounts     map[string]*stats.Counter
	httpLat       *stats.LatencyHist
	dispatches    map[string]*stats.Counter // worker name → proxied requests
	failovers     stats.Counter             // dispatches that left the first-choice worker
	dlqEntered    stats.Counter
	dlqRecovered  stats.Counter
	dlqParkedN    stats.Counter
	dlqRequeued   stats.Counter
	blobsStored   stats.Counter
	resumeShipped stats.Counter // re-dispatches that carried a snapshot blob
	started       time.Time
}

// CoordinatorConfig tunes a Coordinator. Zero values select defaults.
type CoordinatorConfig struct {
	// Workers are the base URLs of the sweepd workers (required, ≥1).
	// Shard names w0..wN follow slice order, so a restarted cluster with
	// the same -workers list reproduces the same placement.
	Workers []string
	// Version must match the workers' version tag: the coordinator
	// computes the same cache keys the workers do, and a mismatch would
	// shard correctly but log misleading keys. Default "dev".
	Version string
	// Client issues all proxied requests (default: a fresh http.Client;
	// per-request deadlines come from contexts, not a client timeout).
	Client *http.Client
	// HealthEvery is the liveness poll cadence (default 1s).
	HealthEvery time.Duration
	// RetryBase is the first dead-letter backoff; attempt n waits
	// RetryBase×2^(n-1) (default 250ms).
	RetryBase time.Duration
	// RetryCap bounds a single backoff wait (default 10s).
	RetryCap time.Duration
	// MaxAttempts bounds dead-letter retries before parking (default 5).
	MaxAttempts int
	// DispatchTimeout caps one proxied request (default 15m — above the
	// workers' own 10m job timeout, so the worker's verdict arrives).
	DispatchTimeout time.Duration
	// MaxBlobs caps retained snapshot blobs, one per cache key, evicting
	// the oldest key (default 64). Blobs are recovery hints; evicting one
	// costs a cold rerun, never correctness.
	MaxBlobs int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Version == "" {
		c.Version = "dev"
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = 15 * time.Minute
	}
	if c.MaxBlobs <= 0 {
		c.MaxBlobs = 64
	}
	return c
}

// workerState is one worker's membership record. Liveness flips on
// health polls and on dispatch feedback (a transport error marks the
// worker dead immediately rather than waiting out the poll interval).
type workerState struct {
	name string
	url  string

	mu       sync.Mutex
	alive    bool
	health   Health
	lastSeen time.Time
	lastErr  string
}

func (ws *workerState) isAlive() bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.alive
}

func (ws *workerState) setDead(reason string) {
	ws.mu.Lock()
	ws.alive = false
	ws.lastErr = reason
	ws.mu.Unlock()
}

// WorkerInfo is the wire form of one worker row (GET /api/v1/workers).
type WorkerInfo struct {
	Name     string    `json:"name"`
	URL      string    `json:"url"`
	Alive    bool      `json:"alive"`
	Health   Health    `json:"health"`
	LastSeen time.Time `json:"last_seen"`
	LastErr  string    `json:"last_error,omitempty"`
}

// NewCoordinator builds a coordinator over the configured workers, probes
// their health once synchronously (so the first request dispatches on
// real liveness, not guesses), and starts the poll loop.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("service: coordinator needs at least one worker URL")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		client:     cfg.Client,
		q:          newDLQ(),
		blobs:      make(map[string][]byte),
		baseCtx:    ctx,
		baseCancel: cancel,
		reqCounts:  make(map[string]*stats.Counter),
		httpLat:    stats.NewLatencyHist(1e-6, 3600, 240),
		dispatches: make(map[string]*stats.Counter),
		started:    time.Now(),
	}
	for i, u := range cfg.Workers {
		ws := &workerState{name: "w" + strconv.Itoa(i), url: strings.TrimRight(u, "/")}
		c.workers = append(c.workers, ws)
		c.dispatches[ws.name] = new(stats.Counter)
	}
	c.mux = c.buildMux()
	c.refreshHealth()
	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the poll loop and every in-flight dead-letter retry.
func (c *Coordinator) Close() {
	c.closeOnce.Do(c.baseCancel)
	c.wg.Wait()
}

// --- liveness ---

func (c *Coordinator) healthLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.HealthEvery)
	defer ticker.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-ticker.C:
			c.refreshHealth()
		}
	}
}

// refreshHealth probes every worker concurrently and updates liveness. A
// worker is alive iff /healthz answers 200 with status "ok" — a draining
// worker reports 503 and stops receiving dispatches, which is exactly a
// graceful handoff: its keys re-shard onto the survivors.
func (c *Coordinator) refreshHealth() {
	var wg sync.WaitGroup
	for _, ws := range c.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(c.baseCtx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.url+"/healthz", nil)
			if err != nil {
				ws.setDead(err.Error())
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				ws.setDead(err.Error())
				return
			}
			defer resp.Body.Close()
			var h Health
			if derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h); derr != nil {
				ws.setDead("bad healthz body: " + derr.Error())
				return
			}
			ws.mu.Lock()
			ws.health = h
			ws.lastSeen = time.Now()
			ws.alive = resp.StatusCode == http.StatusOK && h.Status == "ok"
			if !ws.alive {
				ws.lastErr = fmt.Sprintf("healthz %d (%s)", resp.StatusCode, h.Status)
			} else {
				ws.lastErr = ""
			}
			ws.mu.Unlock()
		}(ws)
	}
	wg.Wait()
}

// aliveNames returns the names of live workers, in membership order.
func (c *Coordinator) aliveNames() []string {
	names := make([]string, 0, len(c.workers))
	for _, ws := range c.workers {
		if ws.isAlive() {
			names = append(names, ws.name)
		}
	}
	return names
}

func (c *Coordinator) workerByName(name string) *workerState {
	for _, ws := range c.workers {
		if ws.name == name {
			return ws
		}
	}
	return nil
}

// pickAlive rendezvous-hashes key over the live worker set. Restricting
// the candidate set to survivors is what makes failover automatic: the
// highest-weight survivor for a key is exactly RankNodes' next choice
// after the dead primary, so only the dead worker's keys move.
func (c *Coordinator) pickAlive(key string) *workerState {
	name := cache.PickNode(key, c.aliveNames())
	if name == "" {
		return nil
	}
	return c.workerByName(name)
}

// --- key addressing ---

// keyFor computes the exact cache key the dispatched worker will compute
// for this request, plus a human-readable spec for DLQ listings. This is
// the sharding address: same request → same key → same worker, so
// repeats and concurrent duplicates land where the cache is warm.
func (c *Coordinator) keyFor(req SweepRequest) (key, spec string, err error) {
	e, opts, err := req.resolve()
	if err != nil {
		return "", "", err
	}
	if sc := req.Scenario; sc != nil {
		return ScenarioCacheKey(c.cfg.Version, *sc, opts.Net), sc.ID(), nil
	}
	return cache.Key(c.cfg.Version, opts.CacheFields(e.ID)), e.ID, nil
}

// --- proxying ---

// proxyResult is a fully buffered worker response: status, the header
// subset worth relaying, and the body verbatim. Buffering (rather than
// streaming) is what lets the DLQ hand the same bytes to every waiter.
type proxyResult struct {
	worker string
	code   int
	header http.Header
	body   []byte
}

// maxProxyBytes bounds a buffered worker response (results are tables of
// formatted cells; 64 MiB is far above any real sweep).
const maxProxyBytes = 64 << 20

// forward issues one request to a worker and buffers the response.
func (c *Coordinator) forward(ctx context.Context, ws *workerState, method, path string, body []byte) (*proxyResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, ws.url+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBytes))
	if err != nil {
		return nil, err
	}
	c.dispatches[ws.name].Inc()
	return &proxyResult{worker: ws.name, code: resp.StatusCode, header: resp.Header.Clone(), body: b}, nil
}

// relayHeaders is the response-header subset a proxy passes through.
var relayHeaders = []string{
	"Content-Type", "Retry-After",
	"X-Sweepd-Job", "X-Sweepd-Source", "X-Sweepd-Elapsed-Ms",
}

// relay writes a buffered worker response to the client, tagging which
// shard served it.
func relay(w http.ResponseWriter, res *proxyResult) {
	for _, k := range relayHeaders {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	if res.worker != "" {
		w.Header().Set("X-Sweepd-Worker", res.worker)
	}
	w.WriteHeader(res.code)
	w.Write(res.body)
}

// retryableCode reports whether a worker status means "another worker
// (or a later attempt) could still produce this result": server-side
// failures and drain refusals, never the 4xx verdicts a request has
// earned on its own merits.
func retryableCode(code int) bool {
	switch code {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// --- handlers ---

func (c *Coordinator) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	h := func(pattern string, fn http.HandlerFunc) {
		mux.Handle(pattern, c.instrument(pattern, fn))
	}
	h("GET /healthz", c.handleHealthz)
	h("GET /metrics", c.handleMetrics)
	h("GET /api/v1/experiments", c.handleExperiments)
	h("GET /api/v1/workers", c.handleWorkers)
	h("POST /api/v1/run", c.handleRunSync)
	h("POST /api/v1/jobs", c.handleSubmit)
	h("GET /api/v1/jobs", c.handleListJobs)
	h("GET /api/v1/jobs/{id}", c.handleJobProxy)
	h("GET /api/v1/jobs/{id}/result", c.handleJobProxy)
	h("GET /api/v1/jobs/{id}/events", c.handleJobEvents)
	h("GET /api/v1/dlq", c.handleDLQList)
	h("POST /api/v1/dlq/{id}/requeue", c.handleDLQRequeue)
	h("POST /api/v1/snapshots/{key}", c.handleSnapshotPut)
	h("GET /api/v1/snapshots/{key}", c.handleSnapshotGet)
	return mux
}

// instrument mirrors the worker's request accounting so cluster and
// single-process metrics read the same way.
func (c *Coordinator) instrument(pattern string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		c.httpLat.Observe(time.Since(start).Seconds())
		key := pattern + "|" + strconv.Itoa(rec.code)
		c.reqMu.Lock()
		cnt, ok := c.reqCounts[key]
		if !ok {
			cnt = new(stats.Counter)
			c.reqCounts[key] = cnt
		}
		c.reqMu.Unlock()
		cnt.Inc()
	})
}

// CoordHealth is the coordinator's /healthz body: cluster liveness plus
// the aggregate load picture behind its Retry-After estimates.
type CoordHealth struct {
	Status        string `json:"status"` // "ok", or "degraded" (with 503) when no worker is alive
	WorkersAlive  int    `json:"workers_alive"`
	WorkersTotal  int    `json:"workers_total"`
	QueueDepth    int    `json:"queue_depth"`    // summed over live workers
	QueueCapacity int    `json:"queue_capacity"` // summed over live workers
	DLQRetrying   int    `json:"dlq_retrying"`
	DLQParked     int    `json:"dlq_parked"`
}

func (c *Coordinator) clusterHealth() CoordHealth {
	h := CoordHealth{Status: "ok", WorkersTotal: len(c.workers)}
	for _, ws := range c.workers {
		ws.mu.Lock()
		if ws.alive {
			h.WorkersAlive++
			h.QueueDepth += ws.health.QueueDepth
			h.QueueCapacity += ws.health.QueueCapacity
		}
		ws.mu.Unlock()
	}
	if h.WorkersAlive == 0 {
		h.Status = "degraded"
	}
	h.DLQRetrying, h.DLQParked = c.q.depth()
	return h
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := c.clusterHealth()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, ws := range c.workers {
		ws.mu.Lock()
		out = append(out, WorkerInfo{
			Name: ws.name, URL: ws.url, Alive: ws.alive,
			Health: ws.health, LastSeen: ws.lastSeen, LastErr: ws.lastErr,
		})
		ws.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExperiments serves the catalog locally — it is a property of the
// build, not of any worker, and must answer even with the cluster down.
func (c *Coordinator) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type expInfo struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Desc  string `json:"desc"`
		Bench string `json:"bench"`
	}
	var out []expInfo
	for _, e := range exp.All() {
		out = append(out, expInfo{ID: e.ID, Title: e.Title, Desc: e.Desc, Bench: e.Bench})
	}
	writeJSON(w, http.StatusOK, out)
}

// writeRequestError maps local validation failures (the coordinator
// validates before dispatching, so a garbage request never ties up a
// shard) onto the same codes a worker would return.
func writeRequestError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	var unknown *unknownExpError
	switch {
	case errors.As(err, &unknown):
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// retryAfterSeconds is the cluster-wide version of the worker estimate:
// total backlog over total workers, at the slowest live shard's mean job
// latency, clamped like the worker's to integer [1, 60] seconds. Using
// one shard's own depth would systematically under-advise whenever the
// other shards are also deep — the exact bug this replaces.
func (c *Coordinator) retryAfterSeconds() int {
	depth, workers := 0, 0
	mean := 0.0
	for _, ws := range c.workers {
		ws.mu.Lock()
		if ws.alive {
			depth += ws.health.QueueDepth
			workers += ws.health.Workers
			if ws.health.MeanJobSeconds > mean {
				mean = ws.health.MeanJobSeconds
			}
		}
		ws.mu.Unlock()
	}
	if workers == 0 || mean <= 0 {
		return 1
	}
	secs := math.Ceil((float64(depth)/float64(workers) + 1) * mean)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}

// handleRunSync is the cluster's synchronous run path. Happy path: one
// proxied request to the key's worker, response relayed verbatim (the
// byte-identity the cache guarantees extends through the proxy). On a
// retryable failure the point enters the DLQ and the client waits on the
// recovery loop — a killed worker costs latency, never a lost or
// corrupted result.
func (c *Coordinator) handleRunSync(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unreadable request body"})
		return
	}
	req, err := decodeRequest(bytes.NewReader(body))
	if err != nil {
		writeRequestError(w, err)
		return
	}
	key, spec, err := c.keyFor(req)
	if err != nil {
		writeRequestError(w, err)
		return
	}

	if ws := c.pickAlive(key); ws != nil {
		path := "/api/v1/run"
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.DispatchTimeout)
		res, ferr := c.forward(ctx, ws, http.MethodPost, path, body)
		cancel()
		if ferr == nil && !retryableCode(res.code) {
			if res.code == http.StatusTooManyRequests {
				res.header.Set("Retry-After", strconv.Itoa(c.retryAfterSeconds()))
			}
			relay(w, res)
			return
		}
		if ferr != nil {
			if r.Context().Err() != nil {
				return // the client hung up, not the worker
			}
			ws.setDead(ferr.Error())
		}
	}

	// Retryable failure (or no live worker at all): dead-letter the point.
	e, created := c.q.enter(key, spec, req, time.Now())
	if created {
		c.dlqEntered.Inc()
		c.wg.Add(1)
		go c.retryLoop(e)
	}
	select {
	case <-e.done:
		if res := e.outcome(); res != nil {
			relay(w, res)
			return
		}
		snap := e.snapshot(c.cfg.MaxAttempts)
		writeJSON(w, http.StatusBadGateway, errorBody{
			Error: fmt.Sprintf("point parked in dead-letter queue as %s after %d attempts: %s",
				snap.ID, snap.Attempts, snap.LastError),
		})
	case <-r.Context().Done():
		// Client gone; the recovery loop carries on — the next identical
		// request joins the same entry or hits the warmed shard cache.
	case <-c.baseCtx.Done():
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "coordinator shutting down"})
	}
}

// retryLoop drives one dead-letter entry to resolution: backoff, pick a
// live worker for the key (re-sharding is implicit — the hash is over
// survivors), re-dispatch with the freshest snapshot blob attached, until
// success or the attempt budget parks it. The loop runs under the
// coordinator's own context, not any client's: recovery outlives the
// request that observed the failure.
func (c *Coordinator) retryLoop(e *dlqEntry) {
	defer c.wg.Done()
	for {
		e.mu.Lock()
		attempt := e.attempts + 1
		e.mu.Unlock()
		if attempt > c.cfg.MaxAttempts {
			break
		}
		delay := c.cfg.RetryBase << (attempt - 1)
		if delay > c.cfg.RetryCap || delay <= 0 {
			delay = c.cfg.RetryCap
		}
		e.noteAttempt(attempt, time.Now().Add(delay))
		select {
		case <-time.After(delay):
		case <-c.baseCtx.Done():
			return
		}
		c.refreshHealth() // don't re-dispatch on a stale liveness picture
		ws := c.pickAlive(e.key)
		if ws == nil {
			e.noteError("no live workers")
			continue
		}
		c.failovers.Inc()
		body, withBlob := c.bodyWithResume(e)
		if withBlob {
			c.resumeShipped.Inc()
		}
		ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.DispatchTimeout)
		res, err := c.forward(ctx, ws, http.MethodPost, "/api/v1/run", body)
		cancel()
		if err != nil {
			ws.setDead(err.Error())
			e.noteError(err.Error())
			continue
		}
		if retryableCode(res.code) || res.code == http.StatusTooManyRequests {
			// 429 is terminal for a direct client (its contract is "back
			// off yourself") but the DLQ *is* the backoff — absorb it.
			e.noteError(fmt.Sprintf("worker %s: status %d: %s", ws.name, res.code, strings.TrimSpace(string(res.body))))
			continue
		}
		c.q.resolve(e, res)
		c.dlqRecovered.Inc()
		return
	}
	e.mu.Lock()
	lastErr := e.lastErr
	e.mu.Unlock()
	c.q.park(e, lastErr)
	c.dlqParkedN.Inc()
}

// bodyWithResume marshals the entry's request, attaching the latest
// snapshot blob for scenario points so the inheriting worker resumes
// from the dead peer's last boundary. The blob is looked up fresh on
// every attempt — a later snapshot may have arrived between retries.
func (c *Coordinator) bodyWithResume(e *dlqEntry) (body []byte, withBlob bool) {
	req := e.req
	if req.Scenario != nil {
		if blob := c.blobFor(e.key); blob != nil {
			req.Resume = blob
			withBlob = true
		}
	}
	b, err := json.Marshal(req)
	if err != nil { // unreachable: the request decoded from JSON
		b, _ = json.Marshal(e.req)
		return b, false
	}
	return b, withBlob
}

// --- async job proxying ---

// handleSubmit proxies POST /api/v1/jobs to the key's worker, with
// immediate rank-order failover across survivors (no job has started, so
// trying the next shard is free). The returned job ID is prefixed with
// the worker name — "w1-j42" — which is all the routing state the
// coordinator keeps: job status lives on the worker that owns it.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unreadable request body"})
		return
	}
	req, err := decodeRequest(bytes.NewReader(body))
	if err != nil {
		writeRequestError(w, err)
		return
	}
	key, _, err := c.keyFor(req)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	ranked := cache.RankNodes(key, c.aliveNames())
	var lastErr string
	for i, name := range ranked {
		ws := c.workerByName(name)
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.DispatchTimeout)
		res, ferr := c.forward(ctx, ws, http.MethodPost, "/api/v1/jobs", body)
		cancel()
		if ferr != nil {
			ws.setDead(ferr.Error())
			lastErr = ferr.Error()
			continue
		}
		if retryableCode(res.code) {
			lastErr = fmt.Sprintf("worker %s: status %d", ws.name, res.code)
			continue
		}
		if i > 0 {
			c.failovers.Inc()
		}
		if res.code != http.StatusAccepted {
			if res.code == http.StatusTooManyRequests {
				res.header.Set("Retry-After", strconv.Itoa(c.retryAfterSeconds()))
			}
			relay(w, res)
			return
		}
		var sub submitResponse
		if jerr := json.Unmarshal(res.body, &sub); jerr != nil {
			writeJSON(w, http.StatusBadGateway, errorBody{Error: "bad submit response from " + ws.name})
			return
		}
		id := ws.name + "-" + sub.ID
		w.Header().Set("X-Sweepd-Worker", ws.name)
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID:        id,
			StatusURL: "/api/v1/jobs/" + id,
			ResultURL: "/api/v1/jobs/" + id + "/result",
			EventsURL: "/api/v1/jobs/" + id + "/events",
		})
		return
	}
	if lastErr == "" {
		lastErr = "no live workers"
	}
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "cannot place job: " + lastErr})
}

// splitJobID resolves a coordinator job id "wN-jM" to its worker and the
// worker-local id.
func (c *Coordinator) splitJobID(id string) (*workerState, string, bool) {
	name, rest, ok := strings.Cut(id, "-")
	if !ok {
		return nil, "", false
	}
	ws := c.workerByName(name)
	if ws == nil {
		return nil, "", false
	}
	return ws, rest, true
}

// handleJobProxy forwards job status and result reads verbatim. The
// result body in particular is untouched: byte-identity end to end.
func (c *Coordinator) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	ws, localID, ok := c.splitJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	path := strings.Replace(r.URL.Path, "/"+r.PathValue("id"), "/"+localID, 1)
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.cfg.DispatchTimeout)
	defer cancel()
	res, err := c.forward(ctx, ws, http.MethodGet, path, nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("worker %s unreachable: %v", ws.name, err)})
		return
	}
	relay(w, res)
}

// handleJobEvents streams a worker's SSE feed through to the client.
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	ws, localID, ok := c.splitJobID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, ws.url+"/api/v1/jobs/"+localID+"/events", nil)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: fmt.Sprintf("worker %s unreachable: %v", ws.name, err)})
		return
	}
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "Cache-Control"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Sweepd-Worker", ws.name)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// handleListJobs merges every live worker's job list, ids prefixed with
// their shard. Dead workers' jobs are simply absent — their points are
// either in the DLQ or already re-run elsewhere.
func (c *Coordinator) handleListJobs(w http.ResponseWriter, r *http.Request) {
	type shardList struct {
		name string
		jobs []JobStatus
	}
	var mu sync.Mutex
	var lists []shardList
	var wg sync.WaitGroup
	for _, ws := range c.workers {
		if !ws.isAlive() {
			continue
		}
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			defer cancel()
			res, err := c.forward(ctx, ws, http.MethodGet, "/api/v1/jobs", nil)
			if err != nil || res.code != http.StatusOK {
				return
			}
			var jobs []JobStatus
			if json.Unmarshal(res.body, &jobs) != nil {
				return
			}
			for i := range jobs {
				jobs[i].ID = ws.name + "-" + jobs[i].ID
			}
			mu.Lock()
			lists = append(lists, shardList{name: ws.name, jobs: jobs})
			mu.Unlock()
		}(ws)
	}
	wg.Wait()
	sort.Slice(lists, func(i, j int) bool { return lists[i].name < lists[j].name })
	merged := []JobStatus{}
	for _, l := range lists {
		merged = append(merged, l.jobs...)
	}
	writeJSON(w, http.StatusOK, merged)
}

// --- DLQ endpoints ---

func (c *Coordinator) handleDLQList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.q.list(c.cfg.MaxAttempts))
}

func (c *Coordinator) handleDLQRequeue(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := c.q.requeue(id, time.Now())
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no parked dead-letter entry %q", id)})
		return
	}
	c.dlqRequeued.Inc()
	c.wg.Add(1)
	go c.retryLoop(e)
	writeJSON(w, http.StatusAccepted, e.snapshot(c.cfg.MaxAttempts))
}

// --- snapshot blob shipping ---

// maxBlobBytes bounds one published snapshot blob.
const maxBlobBytes = 64 << 20

// handleSnapshotPut ingests a worker's mid-run snapshot for a cache key,
// latest-wins. The store is a bounded map, not a database: blobs exist
// to cut recovery time, and the oldest key is evicted past the cap.
func (c *Coordinator) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
	if err != nil || len(blob) == 0 || len(blob) > maxBlobBytes {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad snapshot blob"})
		return
	}
	c.blobMu.Lock()
	if _, exists := c.blobs[key]; !exists {
		c.blobOrder = append(c.blobOrder, key)
		for len(c.blobOrder) > c.cfg.MaxBlobs {
			oldest := c.blobOrder[0]
			c.blobOrder = c.blobOrder[1:]
			delete(c.blobs, oldest)
		}
	}
	c.blobs[key] = blob
	c.blobMu.Unlock()
	c.blobsStored.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	blob := c.blobFor(r.PathValue("key"))
	if blob == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no snapshot for key"})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (c *Coordinator) blobFor(key string) []byte {
	c.blobMu.Lock()
	defer c.blobMu.Unlock()
	return c.blobs[key]
}

// --- metrics ---

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	h := c.clusterHealth()
	p("# HELP sweepd_coord_up Whether any worker shard is accepting work.\n")
	p("# TYPE sweepd_coord_up gauge\n")
	up := 0
	if h.WorkersAlive > 0 {
		up = 1
	}
	p("sweepd_coord_up %d\n", up)
	p("# TYPE sweepd_coord_uptime_seconds counter\n")
	p("sweepd_coord_uptime_seconds %.3f\n", time.Since(c.started).Seconds())
	p("# TYPE sweepd_coord_workers_alive gauge\n")
	p("sweepd_coord_workers_alive %d\n", h.WorkersAlive)
	p("# TYPE sweepd_coord_workers_total gauge\n")
	p("sweepd_coord_workers_total %d\n", h.WorkersTotal)
	p("# HELP sweepd_coord_queue_depth Aggregate job-queue depth across live workers.\n")
	p("# TYPE sweepd_coord_queue_depth gauge\n")
	p("sweepd_coord_queue_depth %d\n", h.QueueDepth)
	p("# TYPE sweepd_coord_queue_capacity gauge\n")
	p("sweepd_coord_queue_capacity %d\n", h.QueueCapacity)

	p("# HELP sweepd_coord_requests_total HTTP requests by route and status code.\n")
	p("# TYPE sweepd_coord_requests_total counter\n")
	c.reqMu.Lock()
	keys := make([]string, 0, len(c.reqCounts))
	for k := range c.reqCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		key string
		n   int64
	}
	rows := make([]kv, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, kv{k, c.reqCounts[k].Value()})
	}
	c.reqMu.Unlock()
	for _, row := range rows {
		var route, code string
		if i := strings.LastIndexByte(row.key, '|'); i >= 0 {
			route, code = row.key[:i], row.key[i+1:]
		}
		p("sweepd_coord_requests_total{route=%q,code=%q} %d\n", route, code, row.n)
	}

	p("# HELP sweepd_coord_dispatches_total Requests proxied to each worker shard.\n")
	p("# TYPE sweepd_coord_dispatches_total counter\n")
	for _, ws := range c.workers {
		p("sweepd_coord_dispatches_total{worker=%q} %d\n", ws.name, c.dispatches[ws.name].Value())
	}
	p("# HELP sweepd_coord_failovers_total Dispatches routed away from the first-choice shard (includes every DLQ re-dispatch).\n")
	p("# TYPE sweepd_coord_failovers_total counter\n")
	p("sweepd_coord_failovers_total %d\n", c.failovers.Value())

	p("# HELP sweepd_coord_dlq_entered_total Points that entered the dead-letter queue.\n")
	p("# TYPE sweepd_coord_dlq_entered_total counter\n")
	p("sweepd_coord_dlq_entered_total %d\n", c.dlqEntered.Value())
	p("# TYPE sweepd_coord_dlq_recovered_total counter\n")
	p("sweepd_coord_dlq_recovered_total %d\n", c.dlqRecovered.Value())
	p("# TYPE sweepd_coord_dlq_parked_total counter\n")
	p("sweepd_coord_dlq_parked_total %d\n", c.dlqParkedN.Value())
	p("# TYPE sweepd_coord_dlq_requeued_total counter\n")
	p("sweepd_coord_dlq_requeued_total %d\n", c.dlqRequeued.Value())
	p("# TYPE sweepd_coord_dlq_retrying gauge\n")
	p("sweepd_coord_dlq_retrying %d\n", h.DLQRetrying)
	p("# TYPE sweepd_coord_dlq_parked gauge\n")
	p("sweepd_coord_dlq_parked %d\n", h.DLQParked)

	p("# HELP sweepd_coord_snapshots_stored_total Snapshot blobs published by workers.\n")
	p("# TYPE sweepd_coord_snapshots_stored_total counter\n")
	p("sweepd_coord_snapshots_stored_total %d\n", c.blobsStored.Value())
	p("# HELP sweepd_coord_resume_shipped_total DLQ re-dispatches that carried a snapshot blob for mid-run resume.\n")
	p("# TYPE sweepd_coord_resume_shipped_total counter\n")
	p("sweepd_coord_resume_shipped_total %d\n", c.resumeShipped.Value())
	c.blobMu.Lock()
	nblobs := len(c.blobs)
	c.blobMu.Unlock()
	p("# TYPE sweepd_coord_snapshot_blobs gauge\n")
	p("sweepd_coord_snapshot_blobs %d\n", nblobs)

	writeLatency := func(name string, lh *stats.LatencyHist) {
		p("# HELP %s Latency quantiles (log-binned histogram).\n", name)
		p("# TYPE %s summary\n", name)
		if lh.Count() > 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				p("%s{quantile=\"%g\"} %.6g\n", name, q, lh.Quantile(q))
			}
		}
		p("%s_sum %.6g\n", name, lh.Sum())
		p("%s_count %d\n", name, lh.Count())
	}
	writeLatency("sweepd_coord_http_request_duration_seconds", c.httpLat)
}
