// Package storage models shared checkpoint storage as a simulated resource.
//
// Every checkpoint protocol in this repo used to charge a fixed per-rank
// write duration, so a coordinated round where all P ranks hit the
// filesystem simultaneously cost the same per rank as a staggered schedule
// where one rank writes at a time. This package makes burst contention
// emergent instead of asserted: a Store exposes two tiers — a node-local
// burst buffer with per-node bandwidth, and a global parallel filesystem
// with finite aggregate bandwidth and a configurable per-writer cap — and
// arbitrates concurrent writers with fair-share (processor-sharing)
// semantics. When k ranks write to the PFS concurrently, each rank's
// remaining bytes drain at min(perWriterCap, aggregate/k); shares are
// recomputed whenever a writer joins or leaves, so a write's *duration* is
// a dynamic function of cluster-wide checkpoint scheduling.
//
// The store schedules its internal events through the Sched interface,
// which *sim.Context satisfies: protocols bind the store to the running
// simulation and route their writes through it (see
// internal/checkpoint). A Store is single-run state — build a fresh one
// per simulation.
//
// # Determinism
//
// All drain arithmetic is float64 bytes over integer-nanosecond intervals,
// recomputed from the full writer set at each membership change (never
// accumulated incrementally across same-time events), so completion times
// are a pure function of the sequence of (time, join/leave) events —
// identical across any ordering of same-timestamp joins. Completion times
// are rounded up to the next nanosecond: a write never finishes before its
// bytes have drained, and bytes drained never exceed capacity × elapsed.
package storage

import (
	"fmt"
	"math"

	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
	"checkpointsim/internal/snapshot"
)

// Tier selects which storage tier a write targets.
type Tier uint8

const (
	// TierGlobal is the parallel filesystem: one aggregate bandwidth shared
	// by every concurrent writer machine-wide, with an optional per-writer
	// cap (a single client cannot saturate the PFS alone).
	TierGlobal Tier = iota
	// TierNode is the node-local burst buffer: each node has its own
	// bandwidth, shared only by the ranks co-located on that node.
	TierNode
)

// String returns the lowercase tier name.
func (t Tier) String() string {
	switch t {
	case TierGlobal:
		return "global"
	case TierNode:
		return "node"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// Sched is the event-scheduling surface the store needs from the simulator;
// *sim.Context satisfies it.
type Sched interface {
	// Now returns the current simulated time.
	Now() simtime.Time
	// At schedules fn at absolute time t (>= Now).
	At(t simtime.Time, fn func())
}

// Marker is optionally implemented by the bound Sched (*sim.Context does):
// when present, the store emits "store-begin"/"store-end" phase markers on
// the trace channel, carrying the write's byte count, so a trace validator
// can check that every byte written is eventually drained. Fake schedulers
// in tests need not implement it.
type Marker interface {
	Mark(rank int, name string, detail int64)
}

// Params describe the storage system. Zero values leave the corresponding
// resource unconstrained; the all-zero Params is the Unlimited store.
type Params struct {
	// AggregateBytesPerSec is the PFS aggregate write bandwidth shared by
	// all concurrent TierGlobal writers (0 = unlimited).
	AggregateBytesPerSec float64
	// PerWriterBytesPerSec caps one writer's share of the PFS — a single
	// compute node's injection limit (0 = no cap).
	PerWriterBytesPerSec float64
	// NodeBytesPerSec is each node's burst-buffer write bandwidth, shared
	// by the RanksPerNode ranks of that node (0 = unlimited).
	NodeBytesPerSec float64
	// RanksPerNode maps ranks to nodes: rank r lives on node r/RanksPerNode
	// (0 defaults to 1 — every rank its own node).
	RanksPerNode int
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	for _, v := range []float64{p.AggregateBytesPerSec, p.PerWriterBytesPerSec, p.NodeBytesPerSec} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("storage: bad bandwidth %v", v)
		}
	}
	if p.RanksPerNode < 0 {
		return fmt.Errorf("storage: negative ranks per node %d", p.RanksPerNode)
	}
	return nil
}

// String renders the parameter set for run headers.
func (p Params) String() string {
	gb := func(v float64) string {
		if v <= 0 {
			return "inf"
		}
		return fmt.Sprintf("%.4g GB/s", v/1e9)
	}
	return fmt.Sprintf("storage{agg=%s writer=%s node=%s ranks/node=%d}",
		gb(p.AggregateBytesPerSec), gb(p.PerWriterBytesPerSec),
		gb(p.NodeBytesPerSec), p.ranksPerNode())
}

func (p Params) ranksPerNode() int {
	if p.RanksPerNode <= 0 {
		return 1
	}
	return p.RanksPerNode
}

// write is one in-flight drain.
type write struct {
	rank      int
	node      int
	tier      Tier
	remaining float64 // bytes left to drain
	bytes     int64
	start     simtime.Time
	drained   func(end simtime.Time)
}

// Store arbitrates concurrent checkpoint writes. Build one per simulation
// with New (or Unlimited) and bind it to the engine with Bind before — or
// at — the first write.
type Store struct {
	p     Params
	sched Sched
	// active writes in insertion order; rates are recomputed from the full
	// set at every membership change.
	writes []*write
	// nodeCount caches the number of active TierNode writes per node;
	// globalCount the number of active TierGlobal writes.
	nodeCount   map[int]int
	globalCount int
	lastAt      simtime.Time // time writes were last advanced to
	gen         uint64       // invalidates superseded completion timers
	stats       Stats
}

// Stats accumulates storage-level counters during a run.
type Stats struct {
	// Writes counts completed drains.
	Writes int64
	// Bytes sums the bytes drained by completed writes.
	Bytes int64
	// WaitTime sums, over completed writes, the drain time in excess of the
	// lone-writer duration — the contention-induced wait.
	WaitTime simtime.Duration
	// PeakWriters is the maximum number of concurrent writers observed
	// (both tiers).
	PeakWriters int
}

// New validates the parameter set and builds a store.
func New(p Params) (*Store, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Store{p: p}, nil
}

// Unlimited returns a store with no bandwidth constraints — the legacy
// fixed-duration write path. Protocols detect it via IsUnlimited/TierLimited
// and reproduce pre-storage results byte-identically.
func Unlimited() *Store { return &Store{} }

// Params returns the store's parameter set.
func (s *Store) Params() Params { return s.p }

// Stats returns the accumulated counters.
func (s *Store) Stats() Stats { return s.stats }

// IsUnlimited reports whether no tier imposes any constraint.
func (s *Store) IsUnlimited() bool {
	return !s.TierLimited(TierGlobal) && !s.TierLimited(TierNode)
}

// TierLimited reports whether writes to the given tier face a finite
// bandwidth. Unconstrained tiers take the legacy fixed-duration path.
func (s *Store) TierLimited(t Tier) bool {
	switch t {
	case TierNode:
		return s.p.NodeBytesPerSec > 0
	default:
		return s.p.AggregateBytesPerSec > 0 || s.p.PerWriterBytesPerSec > 0
	}
}

// loneRate returns the drain rate (bytes/sec) of a solo writer on tier, or
// +Inf when the tier is unconstrained.
func (s *Store) loneRate(t Tier) float64 {
	switch t {
	case TierNode:
		if s.p.NodeBytesPerSec > 0 {
			return s.p.NodeBytesPerSec
		}
		return math.Inf(1)
	default:
		r := math.Inf(1)
		if s.p.AggregateBytesPerSec > 0 {
			r = s.p.AggregateBytesPerSec
		}
		if s.p.PerWriterBytesPerSec > 0 && s.p.PerWriterBytesPerSec < r {
			r = s.p.PerWriterBytesPerSec
		}
		return r
	}
}

// LoneDuration returns how long a solo writer takes to drain bytes on tier
// (zero when the tier is unconstrained) — the contention-free floor of any
// write, and the "nominal" component of the checkpoint/io-wait accounting
// split.
func (s *Store) LoneDuration(t Tier, bytes int64) simtime.Duration {
	r := s.loneRate(t)
	if math.IsInf(r, 1) || bytes <= 0 {
		return 0
	}
	return ceilSeconds(float64(bytes) / r)
}

// BytesFor returns the image size whose solo write on tier lasts d — how
// protocols translate a legacy fixed Write duration into bytes, so that
// uncontended store writes keep their pre-storage durations.
func (s *Store) BytesFor(t Tier, d simtime.Duration) int64 {
	r := s.loneRate(t)
	if math.IsInf(r, 1) || d <= 0 {
		return 0
	}
	return int64(math.Round(d.Seconds() * r))
}

// Bind attaches the store to a scheduler (idempotent for the same one).
// Protocol write helpers call it with their *sim.Context; binding one store
// to two different simulations is a bug.
func (s *Store) Bind(sc Sched) {
	if s.sched == sc {
		return
	}
	if s.sched != nil {
		panic("storage: store bound to a second scheduler — build one store per simulation")
	}
	s.sched = sc
	s.lastAt = sc.Now()
	if ctx, ok := sc.(*sim.Context); ok {
		ctx.OwnTimers("store", s)
	}
}

// Quiesced reports whether the store holds no in-flight drains. Pending
// completion callbacks (write.drained) are closures, so the snapshot
// boundary waits for the store to empty; superseded generation-guarded
// timers may still sit in the queue, but on the owned-timer path those are
// plain data and restore harmlessly.
func (s *Store) Quiesced() bool { return len(s.writes) == 0 }

// EncodeState serializes the store's persistent state. Only call when
// Quiesced: in-flight writes carry completion closures and cannot
// serialize. The membership caches (nodeCount, globalCount) are all zero at
// quiescence and rebuild as writes join, so only the generation counter and
// the accumulated stats travel.
func (s *Store) EncodeState(enc *snapshot.Encoder) {
	if len(s.writes) != 0 {
		panic("storage: EncodeState with in-flight writes")
	}
	enc.U64(s.gen)
	enc.I64(s.stats.Writes)
	enc.I64(s.stats.Bytes)
	enc.Dur(s.stats.WaitTime)
	enc.Int(s.stats.PeakWriters)
}

// RestoreState rebinds the store to a (possibly different) scheduler and
// reinitializes every mutable field from a stream written by EncodeState.
// Protocols call it from their DecodeState; unlike Bind, it deliberately
// overrides an existing binding, because the same Store object may have
// been driven by the snapshotting engine before being restored into the
// resuming one.
func (s *Store) RestoreState(sc Sched, dec *snapshot.Decoder) error {
	s.sched = sc
	s.lastAt = sc.Now()
	s.writes = nil
	s.nodeCount = nil
	s.globalCount = 0
	s.gen = dec.U64()
	s.stats = Stats{
		Writes:      dec.I64(),
		Bytes:       dec.I64(),
		WaitTime:    dec.Dur(),
		PeakWriters: dec.Int(),
	}
	if ctx, ok := sc.(*sim.Context); ok {
		ctx.OwnTimers("store", s)
	}
	return dec.Err()
}

// node returns the node hosting rank.
func (s *Store) node(rank int) int { return rank / s.p.ranksPerNode() }

// mark emits a phase marker when the bound scheduler supports it.
func (s *Store) mark(rank int, name string, detail int64) {
	if m, ok := s.sched.(Marker); ok {
		m.Mark(rank, name, detail)
	}
}

// Begin starts draining bytes written by rank to tier; drained runs exactly
// once, with the completion time, when the last byte has left. Must be
// called from inside an event callback of the bound scheduler. Writes to an
// unconstrained tier complete after zero time (callers normally route those
// through the legacy fixed-duration path instead).
func (s *Store) Begin(rank int, tier Tier, bytes int64, drained func(end simtime.Time)) {
	if s.sched == nil {
		panic("storage: Begin before Bind")
	}
	if bytes < 0 {
		panic(fmt.Sprintf("storage: negative write size %d", bytes))
	}
	now := s.sched.Now()
	s.advance(now)
	w := &write{
		rank: rank, node: s.node(rank), tier: tier,
		remaining: float64(bytes), bytes: bytes, start: now, drained: drained,
	}
	s.writes = append(s.writes, w)
	s.mark(rank, "store-begin", bytes)
	s.join(w, +1)
	if n := len(s.writes); n > s.stats.PeakWriters {
		s.stats.PeakWriters = n
	}
	s.reschedule()
}

// join updates the membership counts by delta for w's resource.
func (s *Store) join(w *write, delta int) {
	if w.tier == TierNode {
		if s.nodeCount == nil {
			s.nodeCount = make(map[int]int)
		}
		s.nodeCount[w.node] += delta
	} else {
		s.globalCount += delta
	}
}

// rate returns w's current fair share in bytes/sec given the membership
// counts. Unconstrained tiers drain infinitely fast.
func (s *Store) rate(w *write) float64 {
	if w.tier == TierNode {
		if s.p.NodeBytesPerSec <= 0 {
			return math.Inf(1)
		}
		return s.p.NodeBytesPerSec / float64(s.nodeCount[w.node])
	}
	r := math.Inf(1)
	if s.p.AggregateBytesPerSec > 0 {
		r = s.p.AggregateBytesPerSec / float64(s.globalCount)
	}
	if s.p.PerWriterBytesPerSec > 0 && s.p.PerWriterBytesPerSec < r {
		r = s.p.PerWriterBytesPerSec
	}
	return r
}

// advance drains every active write from lastAt to now at the rates implied
// by the current (unchanged since lastAt) membership.
func (s *Store) advance(now simtime.Time) {
	dt := now.Sub(s.lastAt).Seconds()
	for _, w := range s.writes {
		r := s.rate(w)
		if math.IsInf(r, 1) {
			// Unconstrained tier: the write drains instantly even across a
			// zero-width interval.
			w.remaining = 0
			continue
		}
		if dt > 0 {
			w.remaining -= r * dt
			if w.remaining < 0 {
				w.remaining = 0
			}
		}
	}
	s.lastAt = now
}

// completionEps absorbs float residue when deciding a write has drained:
// well below one byte, and far below what any realistic rate moves per
// nanosecond, so it can neither strand a finished write nor complete a real
// one early.
const completionEps = 1e-3

// reschedule arms (or re-arms) the next completion timer. Superseded timers
// are invalidated by the generation counter.
func (s *Store) reschedule() {
	s.gen++
	if len(s.writes) == 0 {
		return
	}
	minDt := math.Inf(1)
	for _, w := range s.writes {
		r := s.rate(w)
		var dt float64
		if math.IsInf(r, 1) || w.remaining <= completionEps {
			dt = 0
		} else {
			dt = w.remaining / r
		}
		if dt < minDt {
			minDt = dt
		}
	}
	t := s.lastAt.Add(ceilSeconds(minDt))
	if ctx, ok := s.sched.(*sim.Context); ok {
		// Defunctionalized path: the pending completion is data (owner key
		// "store", generation as the argument), so it serializes into
		// snapshots — a superseded timer that outlives its writes would
		// otherwise be an un-serializable closure blocking every boundary.
		ctx.AtOwned(t, s, 0, int64(s.gen))
		return
	}
	gen := s.gen
	s.sched.At(t, func() {
		if gen != s.gen {
			return
		}
		s.onTimer(t)
	})
}

// OnTimer receives the store's defunctionalized completion timers (arg is
// the scheduling generation; stale generations are superseded no-ops). The
// firing time is the scheduled time, i.e. the scheduler's current Now.
func (s *Store) OnTimer(kind uint8, arg int64) {
	if uint64(arg) != s.gen {
		return
	}
	s.onTimer(s.sched.Now())
}

// onTimer fires at the projected next completion: advance, retire every
// drained write, recompute shares for the survivors.
func (s *Store) onTimer(t simtime.Time) {
	s.advance(t)
	var done []*write
	kept := s.writes[:0]
	for _, w := range s.writes {
		if w.remaining <= completionEps {
			done = append(done, w)
			s.join(w, -1)
		} else {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(s.writes); i++ {
		s.writes[i] = nil
	}
	s.writes = kept
	s.reschedule()
	for _, w := range done {
		s.mark(w.rank, "store-end", w.bytes)
		s.stats.Writes++
		s.stats.Bytes += w.bytes
		if wait := t.Sub(w.start) - s.LoneDuration(w.tier, w.bytes); wait > 0 {
			s.stats.WaitTime += wait
		}
		if w.drained != nil {
			w.drained(t)
		}
	}
}

// ceilSeconds converts a float64 second count to a Duration, rounding up so
// completions never precede the last byte.
func ceilSeconds(sec float64) simtime.Duration {
	v := math.Ceil(sec * 1e9)
	if v >= float64(math.MaxInt64) {
		return simtime.Forever
	}
	if v <= 0 {
		return 0
	}
	return simtime.Duration(v)
}
