package storage

import (
	"testing"

	"checkpointsim/internal/simtime"
)

// fuzzScenario decodes the raw fuzz bytes into a deterministic write
// schedule and runs it against a store, returning per-write completion
// times and the time the last byte drained.
type fuzzWrite struct {
	at    simtime.Time
	rank  int
	tier  Tier
	bytes int64
}

func decodeScenario(data []byte) (Params, []fuzzWrite) {
	if len(data) < 4 {
		return Params{}, nil
	}
	// Bandwidths from the first bytes: modest ranges keep drain times well
	// inside the int64 nanosecond space.
	p := Params{
		AggregateBytesPerSec: float64(1+int(data[0])%16) * 1e9,
		PerWriterBytesPerSec: float64(int(data[1])%8) * 1e9, // 0 = uncapped
		NodeBytesPerSec:      float64(int(data[2])%4) * 1e9, // 0 = unlimited
		RanksPerNode:         1 + int(data[3])%4,
	}
	data = data[4:]
	var ws []fuzzWrite
	for len(data) >= 4 && len(ws) < 24 {
		ws = append(ws, fuzzWrite{
			at:    simtime.Time(int(data[0])%50) * simtime.Time(100*simtime.Microsecond),
			rank:  int(data[1]) % 16,
			tier:  Tier(int(data[2]) % 2),
			bytes: int64(1+int(data[3])) * 64 * 1024,
		})
		data = data[4:]
	}
	return p, ws
}

// runScenario executes the writes on a fresh store and returns each write's
// completion time (in schedule order).
func runScenario(p Params, ws []fuzzWrite) []simtime.Time {
	s, err := New(p)
	if err != nil {
		return nil
	}
	sched := &fakeSched{}
	s.Bind(sched)
	ends := make([]simtime.Time, len(ws))
	for i, w := range ws {
		i, w := i, w
		sched.At(w.at, func() {
			s.Begin(w.rank, w.tier, w.bytes, func(end simtime.Time) { ends[i] = end })
		})
	}
	sched.run()
	return ends
}

// FuzzStoreArbitration checks the processor-sharing invariants on random
// write schedules:
//
//   - conservation: bytes drained through the global tier never exceed
//     aggregate bandwidth x elapsed time (and per-write, a write is never
//     faster than its lone-writer floor);
//   - monotonicity: adding one more writer never makes any existing write
//     finish earlier;
//   - determinism: permuting same-timestamp Begin calls leaves every
//     completion time unchanged.
func FuzzStoreArbitration(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 0, 0, 0, 7, 0, 1, 0, 7, 5, 2, 0, 3})
	f.Add([]byte{1, 0, 2, 2, 0, 0, 1, 9, 0, 1, 1, 9, 0, 2, 1, 9})
	f.Add([]byte{15, 7, 3, 4, 10, 3, 0, 255, 10, 4, 0, 255, 20, 5, 1, 31})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ws := decodeScenario(data)
		if len(ws) == 0 {
			return
		}
		s, _ := New(p)
		ends := runScenario(p, ws)

		// Per-write floor + global conservation. Piecewise segments drain
		// with float64 arithmetic and completionEps absorbs sub-byte
		// residue, so both checks get a couple of nanoseconds of slack.
		var globalBytes float64
		var firstStart, lastEnd simtime.Time = simtime.Infinity, 0
		for i, w := range ws {
			if ends[i] == 0 && w.at != 0 {
				t.Fatalf("write %d never completed", i)
			}
			if d := ends[i].Sub(w.at); d < s.LoneDuration(w.tier, w.bytes)-2 {
				t.Fatalf("write %d drained in %v, below lone-writer floor %v",
					i, d, s.LoneDuration(w.tier, w.bytes))
			}
			if w.tier == TierGlobal {
				globalBytes += float64(w.bytes)
				if w.at < firstStart {
					firstStart = w.at
				}
				if ends[i] > lastEnd {
					lastEnd = ends[i]
				}
			}
		}
		if globalBytes > 0 && p.AggregateBytesPerSec > 0 {
			elapsed := lastEnd.Sub(firstStart).Seconds() + float64(len(ws))*1e-9
			if cap := p.AggregateBytesPerSec * elapsed; globalBytes > cap {
				t.Fatalf("conservation violated: %.0f global bytes in %v (cap %.0f)",
					globalBytes, lastEnd.Sub(firstStart), cap)
			}
		}

		// Monotonicity: replay with one extra writer injected at the first
		// write's start time; no original write may finish earlier. Allow
		// 2ns for the ceil-rounding of piecewise segments landing
		// differently.
		extra := append([]fuzzWrite(nil), ws...)
		extra = append(extra, fuzzWrite{at: ws[0].at, rank: 15, tier: TierGlobal, bytes: 1 << 20})
		endsMore := runScenario(p, extra)
		for i := range ws {
			if endsMore[i] < ends[i]-2 {
				t.Fatalf("write %d sped up with an extra writer: %v -> %v",
					i, ends[i], endsMore[i])
			}
		}

		// Determinism: reverse same-timestamp groups (schedule order within
		// one instant) and compare completion times exactly.
		perm := append([]fuzzWrite(nil), ws...)
		permIdx := make([]int, len(ws))
		for i := range permIdx {
			permIdx[i] = i
		}
		for lo := 0; lo < len(perm); {
			hi := lo
			for hi < len(perm) && perm[hi].at == perm[lo].at {
				hi++
			}
			for a, b := lo, hi-1; a < b; a, b = a+1, b-1 {
				perm[a], perm[b] = perm[b], perm[a]
				permIdx[a], permIdx[b] = permIdx[b], permIdx[a]
			}
			lo = hi
		}
		endsPerm := runScenario(p, perm)
		for i := range perm {
			if endsPerm[i] != ends[permIdx[i]] {
				t.Fatalf("write %d: completion depends on same-time ordering: %v vs %v",
					permIdx[i], ends[permIdx[i]], endsPerm[i])
			}
		}
	})
}
