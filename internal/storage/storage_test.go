package storage

import (
	"fmt"
	"sort"
	"testing"

	"checkpointsim/internal/simtime"
)

// fakeSched is a minimal deterministic event loop: earliest time first,
// insertion order breaking ties — the same discipline as the real engine.
type fakeSched struct {
	now simtime.Time
	seq int
	q   []fakeEvent
}

type fakeEvent struct {
	t   simtime.Time
	seq int
	fn  func()
}

func (f *fakeSched) Now() simtime.Time { return f.now }

func (f *fakeSched) At(t simtime.Time, fn func()) {
	if t < f.now {
		panic(fmt.Sprintf("fakeSched: At(%v) in the past (now %v)", t, f.now))
	}
	f.q = append(f.q, fakeEvent{t: t, seq: f.seq, fn: fn})
	f.seq++
}

// run drains the queue to completion.
func (f *fakeSched) run() {
	for len(f.q) > 0 {
		best := 0
		for i := 1; i < len(f.q); i++ {
			if f.q[i].t < f.q[best].t ||
				(f.q[i].t == f.q[best].t && f.q[i].seq < f.q[best].seq) {
				best = i
			}
		}
		ev := f.q[best]
		f.q = append(f.q[:best], f.q[best+1:]...)
		f.now = ev.t
		ev.fn()
	}
}

func gbps(v float64) float64 { return v * 1e9 }

func TestParamsValidate(t *testing.T) {
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
	bad := []Params{
		{AggregateBytesPerSec: -1},
		{PerWriterBytesPerSec: -1},
		{NodeBytesPerSec: -1},
		{RanksPerNode: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
		if _, err := New(p); err == nil {
			t.Errorf("New accepted bad params %d", i)
		}
	}
}

func TestUnlimitedPredicates(t *testing.T) {
	u := Unlimited()
	if !u.IsUnlimited() || u.TierLimited(TierGlobal) || u.TierLimited(TierNode) {
		t.Error("Unlimited store reports constraints")
	}
	s, err := New(Params{AggregateBytesPerSec: gbps(1)})
	if err != nil {
		t.Fatal(err)
	}
	if s.IsUnlimited() || !s.TierLimited(TierGlobal) {
		t.Error("aggregate-limited store not global-limited")
	}
	if s.TierLimited(TierNode) {
		t.Error("node tier limited without node bandwidth")
	}
	// A per-writer cap alone still makes the global tier finite.
	s2, err := New(Params{PerWriterBytesPerSec: gbps(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.TierLimited(TierGlobal) {
		t.Error("per-writer cap ignored by TierLimited")
	}
}

func TestLoneDurationAndBytesFor(t *testing.T) {
	s, err := New(Params{AggregateBytesPerSec: gbps(10), PerWriterBytesPerSec: gbps(1)})
	if err != nil {
		t.Fatal(err)
	}
	// Lone writer is capped at 1 GB/s: 1e6 bytes take exactly 1ms.
	if d := s.LoneDuration(TierGlobal, 1e6); d != simtime.Millisecond {
		t.Errorf("lone duration = %v, want 1ms", d)
	}
	if b := s.BytesFor(TierGlobal, simtime.Millisecond); b != 1e6 {
		t.Errorf("BytesFor(1ms) = %d, want 1e6", b)
	}
	if d := s.LoneDuration(TierNode, 1e6); d != 0 {
		t.Errorf("unconstrained node tier lone duration = %v, want 0", d)
	}
	if b := s.BytesFor(TierNode, simtime.Millisecond); b != 0 {
		t.Errorf("unconstrained BytesFor = %d, want 0", b)
	}
}

// begin starts a write and records its completion time in *out.
func begin(s *Store, rank int, tier Tier, bytes int64, out *simtime.Time) {
	s.Begin(rank, tier, bytes, func(end simtime.Time) { *out = end })
}

func TestSoloWrite(t *testing.T) {
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	var end simtime.Time
	sched.At(0, func() { begin(s, 0, TierGlobal, 1e6, &end) })
	sched.run()
	if end != simtime.Time(simtime.Millisecond) {
		t.Errorf("solo 1e6B at 1GB/s ended at %v, want 1ms", end)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Bytes != 1e6 || st.WaitTime != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFairShareTwoWriters(t *testing.T) {
	// Two equal writers from t=0 split the aggregate: both finish at 2x the
	// solo duration.
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	var e0, e1 simtime.Time
	sched.At(0, func() {
		begin(s, 0, TierGlobal, 1e6, &e0)
		begin(s, 1, TierGlobal, 1e6, &e1)
	})
	sched.run()
	want := simtime.Time(2 * simtime.Millisecond)
	if e0 != want || e1 != want {
		t.Errorf("two-writer ends = %v, %v, want %v", e0, e1, want)
	}
	if s.Stats().PeakWriters != 2 {
		t.Errorf("peak writers = %d", s.Stats().PeakWriters)
	}
}

func TestLateJoinerSlowsFirst(t *testing.T) {
	// Writer A (2e6 B at 1 GB/s, solo 2ms) is joined at 1ms by writer B
	// (1e6 B). From 1ms on they share: A's remaining 1e6 B and B's 1e6 B
	// drain at 0.5 GB/s each — both finish at 3ms.
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	var ea, eb simtime.Time
	sched.At(0, func() { begin(s, 0, TierGlobal, 2e6, &ea) })
	sched.At(simtime.Time(simtime.Millisecond), func() { begin(s, 1, TierGlobal, 1e6, &eb) })
	sched.run()
	want := simtime.Time(3 * simtime.Millisecond)
	if ea != want || eb != want {
		t.Errorf("ends = %v, %v, want %v both", ea, eb, want)
	}
	if s.Stats().WaitTime != 2*simtime.Millisecond {
		// A waited 1ms beyond its 2ms solo time, B 1ms beyond its 1ms.
		t.Errorf("wait time = %v, want 2ms", s.Stats().WaitTime)
	}
}

func TestPerWriterCapBindsBeforeAggregate(t *testing.T) {
	// Aggregate 10 GB/s, cap 1 GB/s: four writers are cap-bound, not
	// share-bound — no contention among them.
	s, _ := New(Params{AggregateBytesPerSec: gbps(10), PerWriterBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	ends := make([]simtime.Time, 4)
	sched.At(0, func() {
		for i := range ends {
			begin(s, i, TierGlobal, 1e6, &ends[i])
		}
	})
	sched.run()
	for i, e := range ends {
		if e != simtime.Time(simtime.Millisecond) {
			t.Errorf("writer %d ended at %v, want 1ms (cap-bound)", i, e)
		}
	}
	if s.Stats().WaitTime != 0 {
		t.Errorf("cap-bound writers accumulated wait %v", s.Stats().WaitTime)
	}
}

func TestAggregateBindsBeyondCap(t *testing.T) {
	// Aggregate 2 GB/s, cap 1 GB/s, four writers: share 0.5 GB/s each.
	s, _ := New(Params{AggregateBytesPerSec: gbps(2), PerWriterBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	ends := make([]simtime.Time, 4)
	sched.At(0, func() {
		for i := range ends {
			begin(s, i, TierGlobal, 1e6, &ends[i])
		}
	})
	sched.run()
	for i, e := range ends {
		if e != simtime.Time(2*simtime.Millisecond) {
			t.Errorf("writer %d ended at %v, want 2ms (share-bound)", i, e)
		}
	}
}

func TestNodeTierIsPerNode(t *testing.T) {
	// Two ranks per node, node bandwidth 1 GB/s. Ranks 0,1 share node 0;
	// rank 2 is alone on node 1. Global tier stays untouched.
	s, _ := New(Params{NodeBytesPerSec: gbps(1), RanksPerNode: 2})
	sched := &fakeSched{}
	s.Bind(sched)
	var e0, e1, e2 simtime.Time
	sched.At(0, func() {
		begin(s, 0, TierNode, 1e6, &e0)
		begin(s, 1, TierNode, 1e6, &e1)
		begin(s, 2, TierNode, 1e6, &e2)
	})
	sched.run()
	if e0 != simtime.Time(2*simtime.Millisecond) || e1 != simtime.Time(2*simtime.Millisecond) {
		t.Errorf("co-located ranks ended at %v, %v, want 2ms", e0, e1)
	}
	if e2 != simtime.Time(simtime.Millisecond) {
		t.Errorf("solo-node rank ended at %v, want 1ms", e2)
	}
}

func TestTiersDoNotContend(t *testing.T) {
	// A global writer and a node writer are independent resources.
	s, _ := New(Params{AggregateBytesPerSec: gbps(1), NodeBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	var eg, en simtime.Time
	sched.At(0, func() {
		begin(s, 0, TierGlobal, 1e6, &eg)
		begin(s, 1, TierNode, 1e6, &en)
	})
	sched.run()
	if eg != simtime.Time(simtime.Millisecond) || en != simtime.Time(simtime.Millisecond) {
		t.Errorf("cross-tier contention: global %v, node %v, want 1ms each", eg, en)
	}
}

func TestZeroByteWriteCompletesImmediately(t *testing.T) {
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	end := simtime.Time(-1)
	sched.At(simtime.Time(5), func() { begin(s, 0, TierGlobal, 0, &end) })
	sched.run()
	if end != simtime.Time(5) {
		t.Errorf("zero-byte write ended at %v, want 5ns", end)
	}
}

func TestUnconstrainedTierCompletesImmediately(t *testing.T) {
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)}) // node tier unconstrained
	sched := &fakeSched{}
	s.Bind(sched)
	end := simtime.Time(-1)
	sched.At(simtime.Time(7), func() { begin(s, 0, TierNode, 1e9, &end) })
	sched.run()
	if end != simtime.Time(7) {
		t.Errorf("unconstrained write ended at %v, want 7ns", end)
	}
}

func TestSameTimeJoinOrderIrrelevant(t *testing.T) {
	// Three writers starting at the same instant complete at the same times
	// regardless of Begin call order.
	run := func(order []int) []simtime.Time {
		s, _ := New(Params{AggregateBytesPerSec: gbps(1), PerWriterBytesPerSec: gbps(1)})
		sched := &fakeSched{}
		s.Bind(sched)
		ends := make([]simtime.Time, 3)
		sizes := []int64{1e6, 2e6, 3e6}
		sched.At(0, func() {
			for _, i := range order {
				begin(s, i, TierGlobal, sizes[i], &ends[i])
			}
		})
		sched.run()
		return ends
	}
	a := run([]int{0, 1, 2})
	b := run([]int{2, 0, 1})
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("writer %d: order changed completion %v -> %v", i, a[i], b[i])
		}
	}
	// And the PS closed form holds: with sizes 1,2,3 MB at 1 GB/s shared,
	// completions at 3ms, 5ms, 6ms.
	want := []simtime.Time{
		simtime.Time(3 * simtime.Millisecond),
		simtime.Time(5 * simtime.Millisecond),
		simtime.Time(6 * simtime.Millisecond),
	}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("writer %d ended at %v, want %v", i, a[i], want[i])
		}
	}
}

func TestBindTwiceSameSchedOK(t *testing.T) {
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	s.Bind(sched) // idempotent
	defer func() {
		if recover() == nil {
			t.Error("binding a second scheduler did not panic")
		}
	}()
	s.Bind(&fakeSched{})
}

func TestBeginBeforeBindPanics(t *testing.T) {
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	defer func() {
		if recover() == nil {
			t.Error("Begin before Bind did not panic")
		}
	}()
	s.Begin(0, TierGlobal, 1, nil)
}

func TestTierString(t *testing.T) {
	if TierGlobal.String() != "global" || TierNode.String() != "node" {
		t.Error("tier names drifted")
	}
	if Tier(9).String() != "tier(9)" {
		t.Error("unknown tier formatting drifted")
	}
}

func TestParamsString(t *testing.T) {
	p := Params{AggregateBytesPerSec: gbps(8), PerWriterBytesPerSec: gbps(1)}
	got := p.String()
	want := "storage{agg=8 GB/s writer=1 GB/s node=inf ranks/node=1}"
	if got != want {
		t.Errorf("Params.String() = %q, want %q", got, want)
	}
}

// TestManyWritersConservation drives a burst of staggered writers and
// checks the aggregate-bandwidth conservation law end to end.
func TestManyWritersConservation(t *testing.T) {
	const n = 32
	s, _ := New(Params{AggregateBytesPerSec: gbps(1)})
	sched := &fakeSched{}
	s.Bind(sched)
	ends := make([]simtime.Time, n)
	for i := 0; i < n; i++ {
		i := i
		sched.At(simtime.Time(i)*simtime.Time(100*simtime.Microsecond), func() {
			begin(s, i, TierGlobal, 1e6, &ends[i])
		})
	}
	sched.run()
	sorted := append([]simtime.Time(nil), ends...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	last := sorted[n-1]
	// 32 MB through a 1 GB/s pipe needs >= 32ms no matter the schedule.
	if min := simtime.Time(32 * simtime.Millisecond); last < min {
		t.Errorf("32MB drained by %v — faster than the 1GB/s pipe allows (%v)", last, min)
	}
	if got := s.Stats().Bytes; got != 32e6 {
		t.Errorf("drained bytes = %d, want 32e6", got)
	}
}
