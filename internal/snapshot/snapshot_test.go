package snapshot

import (
	"errors"
	"math"
	"testing"

	"checkpointsim/internal/simtime"
)

// TestPrimitiveRoundTrip drives every encoder primitive through its decoder
// counterpart, including the values varint/zigzag/IEEE-754 edge on.
func TestPrimitiveRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(0)
	e.U8(255)
	e.Bool(true)
	e.Bool(false)
	e.U64(0)
	e.U64(math.MaxUint64)
	e.I64(0)
	e.I64(math.MinInt64)
	e.I64(math.MaxInt64)
	e.Int(-42)
	e.F64(0)
	e.F64(math.Copysign(0, -1))
	e.F64(math.Inf(1))
	e.F64(math.Float64frombits(0x7ff8000000000001)) // NaN with payload
	e.Fix64(0xdeadbeefcafebabe)
	e.Raw([]byte{1, 2, 3})
	e.BytesLP(nil)
	e.BytesLP([]byte("blob"))
	e.Str("")
	e.Str("reason:checkpoint")
	e.Time(simtime.Time(123456789))
	e.Dur(simtime.Duration(-5))

	d := NewDecoder(e.Bytes())
	check := func(name string, ok bool) {
		t.Helper()
		if !ok {
			t.Errorf("%s did not round-trip (err=%v)", name, d.Err())
		}
	}
	check("u8", d.U8() == 0)
	check("u8 max", d.U8() == 255)
	check("bool true", d.Bool() == true)
	check("bool false", d.Bool() == false)
	check("u64 zero", d.U64() == 0)
	check("u64 max", d.U64() == math.MaxUint64)
	check("i64 zero", d.I64() == 0)
	check("i64 min", d.I64() == math.MinInt64)
	check("i64 max", d.I64() == math.MaxInt64)
	check("int", d.Int() == -42)
	check("f64 zero", d.F64() == 0)
	if v := d.F64(); !(v == 0 && math.Signbit(v)) {
		t.Errorf("negative zero did not survive: %v", v)
	}
	check("f64 inf", math.IsInf(d.F64(), 1))
	if bits := math.Float64bits(d.F64()); bits != 0x7ff8000000000001 {
		t.Errorf("NaN payload not preserved: %#x", bits)
	}
	check("fix64", d.Fix64() == 0xdeadbeefcafebabe)
	check("raw", string(d.Raw(3)) == "\x01\x02\x03")
	check("byteslp nil", len(d.BytesLP()) == 0)
	check("byteslp", string(d.BytesLP()) == "blob")
	check("str empty", d.Str() == "")
	check("str", d.Str() == "reason:checkpoint")
	check("time", d.Time() == simtime.Time(123456789))
	check("dur", d.Dur() == simtime.Duration(-5))
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish after exact consumption: %v", err)
	}
}

func TestI64SliceRoundTrip(t *testing.T) {
	var e Encoder
	EncodeI64Slice(&e, []simtime.Time{1, 2, 3})
	EncodeI64Slice[int64](&e, nil)
	d := NewDecoder(e.Bytes())
	got := DecodeI64Slice[simtime.Time](d, 3)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("slice round-trip: %v (err %v)", got, d.Err())
	}
	if ev := DecodeI64Slice[int64](d, -1); len(ev) != 0 || d.Err() != nil {
		t.Fatalf("nil slice round-trip: %v (err %v)", ev, d.Err())
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}

	// Pinned-length mismatch is corrupt, not silently accepted.
	d = NewDecoder(e.Bytes())
	if DecodeI64Slice[simtime.Time](d, 4); !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("length mismatch err = %v, want ErrCorrupt", d.Err())
	}
}

// TestStickyErrors: after the first failure every further read returns a
// zero value and the original error is retained.
func TestStickyErrors(t *testing.T) {
	d := NewDecoder([]byte{})
	if v := d.U8(); v != 0 || !errors.Is(d.Err(), ErrTruncated) {
		t.Fatalf("read past end: v=%d err=%v", v, d.Err())
	}
	first := d.Err()
	if d.I64() != 0 || d.Str() != "" || d.F64() != 0 || d.Raw(1) != nil {
		t.Error("reads after failure returned non-zero values")
	}
	if d.Err() != first {
		t.Errorf("first error not retained: %v -> %v", first, d.Err())
	}
}

func TestBoolOutOfRange(t *testing.T) {
	d := NewDecoder([]byte{2})
	if d.Bool(); !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("bool byte 2: err = %v, want ErrCorrupt", d.Err())
	}
}

func TestFinishTrailingBytes(t *testing.T) {
	var e Encoder
	e.U8(7)
	e.U8(8)
	d := NewDecoder(e.Bytes())
	d.U8()
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Finish with trailing bytes: %v, want ErrCorrupt", err)
	}
}

// TestBytesLPOverlongLength: a length prefix exceeding the remaining bytes
// is truncation, and must not attempt a giant allocation.
func TestBytesLPOverlongLength(t *testing.T) {
	var e Encoder
	e.U64(1 << 60)
	d := NewDecoder(e.Bytes())
	if b := d.BytesLP(); b != nil || !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("overlong byte string: b=%v err=%v", b, d.Err())
	}
}

func TestSectionIsolation(t *testing.T) {
	var e Encoder
	e.Section(func(sub *Encoder) { sub.I64(41); sub.Str("inner") })
	e.I64(99)
	d := NewDecoder(e.Bytes())
	sub := d.Section()
	if sub.I64() != 41 || sub.Str() != "inner" || sub.Finish() != nil {
		t.Fatal("section contents did not round-trip")
	}
	if d.I64() != 99 || d.Finish() != nil {
		t.Fatal("outer stream corrupted by section")
	}
}

// TestSealOpen covers the framing error taxonomy end to end.
func TestSealOpen(t *testing.T) {
	payload := []byte("engine state goes here")
	blob := Seal(FormatVersion, payload)

	v, got, err := Open(blob)
	if err != nil || v != FormatVersion || string(got) != string(payload) {
		t.Fatalf("Open(Seal(...)): v=%d payload=%q err=%v", v, got, err)
	}

	// Truncation at every prefix length.
	for n := 0; n < len(blob); n++ {
		if _, _, err := Open(blob[:n]); err == nil {
			t.Fatalf("Open accepted a %d-byte prefix of a %d-byte blob", n, len(blob))
		}
	}
	// Every single-bit flip is caught by magic or digest checking.
	for i := 0; i < len(blob); i++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), blob...)
			bad[i] ^= 1 << bit
			if _, _, err := Open(bad); err == nil {
				t.Fatalf("Open accepted blob with bit %d of byte %d flipped", bit, i)
			}
		}
	}

	if _, _, err := Open([]byte("not a snapshot, definitely not one " + string(make([]byte, 64)))); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] ^= 0x80
	if _, _, err := Open(bad); !errors.Is(err, ErrDigest) {
		t.Errorf("flipped digest byte: %v", err)
	}
	// A different sealed version opens fine (digest is intact); the caller
	// compares against FormatVersion.
	if v, _, err := Open(Seal(FormatVersion+7, payload)); err != nil || v != FormatVersion+7 {
		t.Errorf("future version: v=%d err=%v", v, err)
	}
}
