// Package snapshot implements the binary codec behind resumable
// simulations: a compact, versioned, digest-tagged serialization of
// mid-run simulator state (see sim.Engine.Restore and DESIGN.md S25).
//
// The format is deliberately primitive — varint scalars appended to a flat
// byte slice, length-prefixed nested sections — because the encoder runs on
// the simulation hot path (a snapshot every few hundred thousand events)
// and the decoder must be safe against arbitrary corruption: every read is
// bounds-checked, errors are sticky, and a sealed blob carries a SHA-256
// trailer over everything before it, so a truncated or bit-flipped snapshot
// is rejected before any field reaches the engine.
//
// # Framing
//
// A sealed blob is
//
//	magic "CKSNAP1\n" | uvarint format version | payload | SHA-256(prefix)
//
// Seal produces it, Open verifies structure and digest and returns the
// version and payload. Version compatibility is the caller's decision
// (compare against FormatVersion); the codec only guarantees the bytes are
// exactly what was sealed.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"checkpointsim/internal/simtime"
)

// FormatVersion is the current snapshot format. Bump it on any layout
// change; Open still succeeds on old blobs (the digest says the bytes are
// intact) and the engine rejects the version mismatch with ErrVersion.
const FormatVersion = 1

// magic identifies a sealed snapshot blob.
const magic = "CKSNAP1\n"

// Decode errors. All corruption paths return errors wrapping one of these —
// never a panic — so a damaged snapshot degrades to a cold restart.
var (
	// ErrTruncated marks a blob or field cut short.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrMagic marks a blob that is not a snapshot at all.
	ErrMagic = errors.New("snapshot: bad magic")
	// ErrDigest marks a blob whose SHA-256 trailer does not match its
	// contents — bit rot, torn write, or tampering.
	ErrDigest = errors.New("snapshot: digest mismatch")
	// ErrVersion marks a structurally intact blob written by an
	// incompatible format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrCorrupt marks a field-level inconsistency inside a verified blob
	// (overlong length, out-of-range enum, trailing garbage). Reaching it
	// means a digest-intact blob disagrees with the decoder's expectations
	// — an encoder/decoder bug, not storage damage.
	ErrCorrupt = errors.New("snapshot: corrupt field")
)

// Seal frames payload with the magic, the format version, and a SHA-256
// digest over everything before the trailer.
func Seal(version uint64, payload []byte) []byte {
	blob := make([]byte, 0, len(magic)+binary.MaxVarintLen64+len(payload)+sha256.Size)
	blob = append(blob, magic...)
	blob = binary.AppendUvarint(blob, version)
	blob = append(blob, payload...)
	sum := sha256.Sum256(blob)
	return append(blob, sum[:]...)
}

// Open verifies a sealed blob's structure and digest and returns its format
// version and payload. The payload aliases blob; callers must not mutate it.
func Open(blob []byte) (version uint64, payload []byte, err error) {
	if len(blob) < len(magic)+1+sha256.Size {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(blob))
	}
	if string(blob[:len(magic)]) != magic {
		return 0, nil, ErrMagic
	}
	body, trailer := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(trailer) {
		return 0, nil, ErrDigest
	}
	version, n := binary.Uvarint(body[len(magic):])
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: version varint", ErrCorrupt)
	}
	return version, body[len(magic)+n:], nil
}

// Encoder appends primitive values to a growing buffer. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer (aliased, not copied).
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zigzag) varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as fixed 8 little-endian bytes of its IEEE-754
// representation, preserving every bit pattern (including -0 and NaNs).
func (e *Encoder) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Fix64 appends a uint64 as fixed 8 little-endian bytes (RNG state words,
// which varints would inflate).
func (e *Encoder) Fix64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Raw appends b verbatim with no length prefix (fixed-size digests).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesLP(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Time appends a simulated timestamp.
func (e *Encoder) Time(t simtime.Time) { e.I64(int64(t)) }

// Dur appends a simulated duration.
func (e *Encoder) Dur(d simtime.Duration) { e.I64(int64(d)) }

// Section appends a length-prefixed nested section filled by fn, so the
// decoder can verify the consumer reads exactly the bytes the producer
// wrote (agent state sections).
func (e *Encoder) Section(fn func(*Encoder)) {
	var sub Encoder
	fn(&sub)
	e.BytesLP(sub.buf)
}

// Decoder reads values written by Encoder. Errors are sticky: after the
// first failure every read returns a zero value and Err reports the cause,
// so decode paths can defer error handling to a single check.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b (aliased, not copied).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error, or ErrCorrupt when intact trailing bytes
// remain — a section longer than its consumer expects is as wrong as one
// too short.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Failf records a formatted field-level ErrCorrupt, for consumers that
// discover semantic inconsistencies (bad enum, length mismatch) beyond the
// codec's structural checks.
func (d *Decoder) Failf(format string, args ...any) {
	d.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bool reads a boolean; any byte other than 0 or 1 is corrupt.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.Failf("bool out of range")
		return false
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: uvarint", ErrTruncated))
		return 0
	}
	d.off += n
	return v
}

// I64 reads a signed varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: varint", ErrTruncated))
		return 0
	}
	d.off += n
	return v
}

// Int reads an int-sized signed varint.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a fixed-8 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.Fix64()) }

// Fix64 reads a fixed-8 uint64.
func (d *Decoder) Fix64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(fmt.Errorf("%w: fixed64", ErrTruncated))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Raw reads n verbatim bytes (aliased).
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(fmt.Errorf("%w: raw %d bytes", ErrTruncated, n))
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

// BytesLP reads a length-prefixed byte string (aliased).
func (d *Decoder) BytesLP() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail(fmt.Errorf("%w: byte string of %d with %d remaining", ErrTruncated, n, d.Remaining()))
		return nil
	}
	return d.Raw(int(n))
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.BytesLP()) }

// Time reads a simulated timestamp.
func (d *Decoder) Time() simtime.Time { return simtime.Time(d.I64()) }

// Dur reads a simulated duration.
func (d *Decoder) Dur() simtime.Duration { return simtime.Duration(d.I64()) }

// Section reads a length-prefixed nested section as its own decoder.
func (d *Decoder) Section() *Decoder { return NewDecoder(d.BytesLP()) }

// EncodeI64Slice appends a length-prefixed slice of any int64-kinded type
// (simtime.Time, simtime.Duration, int64, interned IDs).
func EncodeI64Slice[T ~int64 | ~int32 | ~int](e *Encoder, v []T) {
	e.Int(len(v))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// DecodeI64Slice reads a slice written by EncodeI64Slice. want >= 0 pins the
// expected length (slices sized by rank count); -1 accepts any. A nil slice
// round-trips as empty.
func DecodeI64Slice[T ~int64 | ~int32 | ~int](d *Decoder, want int) []T {
	n := d.Int()
	if d.Err() != nil {
		return nil
	}
	if n < 0 || (want >= 0 && n != want) || n > d.Remaining() {
		d.Failf("slice length %d (want %d, %d bytes remain)", n, want, d.Remaining())
		return nil
	}
	out := make([]T, n)
	for i := range out {
		out[i] = T(d.I64())
	}
	return out
}
