// Package workload generates synthetic applications with the communication
// skeletons of the production codes used in checkpointing studies of the
// paper's era: halo-exchange stencils (CTH/LAMMPS class), wavefront sweeps
// (Sweep3D/PARTISN class), allreduce-dominated iterative solvers (HPCCG/CG
// class), transpose-heavy codes (FFT class), bulk-synchronous master–worker
// farms, and embarrassingly parallel baselines.
//
// The generators substitute for the recorded MPI traces the original study
// replayed (which are not redistributable): what matters for delay
// propagation is the dependency skeleton — who waits on whom, how often,
// with what message sizes — and that is reproduced exactly. Per-iteration
// compute is a parameter, optionally jittered with a seeded, truncated
// normal distribution to model load imbalance.
package workload

import (
	"fmt"
	"math"
	"math/bits"

	"checkpointsim/internal/collective"
	"checkpointsim/internal/goal"
	"checkpointsim/internal/rng"
	"checkpointsim/internal/simtime"
)

// reserve pre-sizes the builder from the generator's op-count estimate, so
// trace construction appends into place instead of re-copying the op table
// on every capacity doubling. Estimates only need the right magnitude.
func reserve(b *goal.Builder, est int) { b.Grow(est) }

// allreduceOps roughly bounds the ops one tree allreduce adds: two sweeps
// of sends/recvs plus join nodes, per rank, times the tree depth.
func allreduceOps(ranks int) int { return 6 * ranks * (bits.Len(uint(ranks)) + 1) }

// Base holds the parameters common to all workloads.
type Base struct {
	// Ranks is the number of MPI ranks.
	Ranks int
	// Iterations is the number of outer timesteps.
	Iterations int
	// Compute is the mean per-rank computation per iteration.
	Compute simtime.Duration
	// Jitter is the relative standard deviation of per-iteration compute
	// (0 = perfectly balanced). Draws are truncated at zero.
	Jitter float64
	// Seed drives the jitter stream; equal seeds give equal programs.
	Seed uint64
}

func (b Base) validate() error {
	if b.Ranks <= 0 {
		return fmt.Errorf("workload: %d ranks", b.Ranks)
	}
	if b.Iterations <= 0 {
		return fmt.Errorf("workload: %d iterations", b.Iterations)
	}
	if b.Compute < 0 {
		return fmt.Errorf("workload: negative compute")
	}
	if b.Jitter < 0 || math.IsNaN(b.Jitter) {
		return fmt.Errorf("workload: bad jitter %v", b.Jitter)
	}
	return nil
}

// computeSource returns the deterministic jitter stream for this workload.
func (b Base) computeSource() *rng.Source { return rng.New(b.Seed).Split(0x77) }

// draw returns one per-iteration compute duration.
func (b Base) draw(r *rng.Source) simtime.Duration {
	if b.Jitter == 0 || b.Compute == 0 {
		return b.Compute
	}
	v := r.TruncNormal(float64(b.Compute), b.Jitter*float64(b.Compute), 0)
	return simtime.Duration(v)
}

// Dims2 factors p into the most square (px, py) grid with px·py = p and
// px >= py.
func Dims2(p int) (px, py int) {
	py = int(math.Sqrt(float64(p)))
	for py > 1 && p%py != 0 {
		py--
	}
	return p / py, py
}

// Dims3 factors p into the most cubic (px, py, pz) with px ≥ py ≥ pz.
func Dims3(p int) (px, py, pz int) {
	pz = int(math.Cbrt(float64(p)))
	for pz > 1 && p%pz != 0 {
		pz--
	}
	rest := p / pz
	px, py = Dims2(rest)
	return px, py, pz
}

// tag bases keep each workload's message classes distinct.
const (
	tagHalo   = 100
	tagReduce = 200
	tagSweep  = 300
	tagFarm   = 400
	tagPair   = 500
	tagFinal  = 600
)

// Stencil2DConfig configures a 2D halo-exchange stencil.
type Stencil2DConfig struct {
	Base
	// HaloBytes is the per-neighbor halo message size.
	HaloBytes int64
	// Periodic selects periodic (torus) boundaries; otherwise edge ranks
	// have fewer neighbors.
	Periodic bool
	// ReduceEvery inserts an 8-byte allreduce (a residual/dt check) every
	// this many iterations; 0 disables it.
	ReduceEvery int
	// ComputeScale optionally multiplies each rank's per-iteration compute
	// (nil = uniform). Length must equal Ranks. Models static load
	// imbalance: stragglers, hotspots, heterogeneous nodes.
	ComputeScale []float64
}

// Stencil2D builds a 5-point 2D halo-exchange stencil on the most square
// rank grid: each iteration computes, then exchanges halos with up to four
// neighbors via non-blocking send/recv pairs joined before the next step.
func Stencil2D(cfg Stencil2DConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.HaloBytes < 0 {
		return nil, fmt.Errorf("workload: negative halo size")
	}
	if cfg.ComputeScale != nil && len(cfg.ComputeScale) != cfg.Ranks {
		return nil, fmt.Errorf("workload: ComputeScale has %d entries for %d ranks",
			len(cfg.ComputeScale), cfg.Ranks)
	}
	for _, f := range cfg.ComputeScale {
		if f < 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("workload: bad compute scale %v", f)
		}
	}
	px, py := Dims2(cfg.Ranks)
	rankOf := func(x, y int) int { return y*px + x }
	b := goal.NewBuilder(cfg.Ranks)
	est := cfg.Iterations * cfg.Ranks * 10 // calc + ≤4 halo pairs + join
	if cfg.ReduceEvery > 0 {
		est += cfg.Iterations / cfg.ReduceEvery * allreduceOps(cfg.Ranks)
	}
	reserve(b, est)
	seqs := make([]*goal.Sequencer, cfg.Ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	r := cfg.computeSource()

	neighbors := func(x, y int) []int {
		var out []int
		type d struct{ dx, dy int }
		for _, dd := range []d{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
			nx, ny := x+dd.dx, y+dd.dy
			if cfg.Periodic {
				nx, ny = (nx+px)%px, (ny+py)%py
			} else if nx < 0 || nx >= px || ny < 0 || ny >= py {
				continue
			}
			n := rankOf(nx, ny)
			if n != rankOf(x, y) { // periodic wrap on a 1-wide dim
				out = append(out, n)
			}
		}
		return out
	}

	for it := 0; it < cfg.Iterations; it++ {
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				rank := rankOf(x, y)
				s := seqs[rank]
				w := cfg.draw(r)
				if cfg.ComputeScale != nil {
					w = w.Scale(cfg.ComputeScale[rank])
				}
				s.Calc(w)
				var forks []goal.OpID
				for _, n := range neighbors(x, y) {
					forks = append(forks,
						s.Fork(goal.KindSend, int32(n), tagHalo, cfg.HaloBytes),
						s.Fork(goal.KindRecv, int32(n), tagHalo, cfg.HaloBytes))
				}
				s.Join(forks...)
			}
		}
		if cfg.ReduceEvery > 0 && (it+1)%cfg.ReduceEvery == 0 {
			entries := make([]goal.OpID, cfg.Ranks)
			for i, s := range seqs {
				entries[i] = s.Last()
			}
			exits := collective.Allreduce(b, entries, tagReduce, 8)
			for i := range seqs {
				seqs[i] = b.SeqAfter(i, exits[i])
			}
		}
	}
	return b.Build()
}

// Stencil3DConfig configures a 3D halo-exchange stencil.
type Stencil3DConfig struct {
	Base
	HaloBytes   int64
	Periodic    bool
	ReduceEvery int
}

// Stencil3D builds a 7-point 3D halo-exchange stencil (up to six
// neighbors per rank) on the most cubic rank grid.
func Stencil3D(cfg Stencil3DConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.HaloBytes < 0 {
		return nil, fmt.Errorf("workload: negative halo size")
	}
	px, py, pz := Dims3(cfg.Ranks)
	rankOf := func(x, y, z int) int { return (z*py+y)*px + x }
	b := goal.NewBuilder(cfg.Ranks)
	est := cfg.Iterations * cfg.Ranks * 14 // calc + ≤6 halo pairs + join
	if cfg.ReduceEvery > 0 {
		est += cfg.Iterations / cfg.ReduceEvery * allreduceOps(cfg.Ranks)
	}
	reserve(b, est)
	seqs := make([]*goal.Sequencer, cfg.Ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	r := cfg.computeSource()
	type d struct{ dx, dy, dz int }
	dirs := []d{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	neighbors := func(x, y, z int) []int {
		var out []int
		for _, dd := range dirs {
			nx, ny, nz := x+dd.dx, y+dd.dy, z+dd.dz
			if cfg.Periodic {
				nx, ny, nz = (nx+px)%px, (ny+py)%py, (nz+pz)%pz
			} else if nx < 0 || nx >= px || ny < 0 || ny >= py || nz < 0 || nz >= pz {
				continue
			}
			n := rankOf(nx, ny, nz)
			if n != rankOf(x, y, z) {
				out = append(out, n)
			}
		}
		return out
	}
	for it := 0; it < cfg.Iterations; it++ {
		for z := 0; z < pz; z++ {
			for y := 0; y < py; y++ {
				for x := 0; x < px; x++ {
					rank := rankOf(x, y, z)
					s := seqs[rank]
					s.Calc(cfg.draw(r))
					var forks []goal.OpID
					for _, n := range neighbors(x, y, z) {
						forks = append(forks,
							s.Fork(goal.KindSend, int32(n), tagHalo, cfg.HaloBytes),
							s.Fork(goal.KindRecv, int32(n), tagHalo, cfg.HaloBytes))
					}
					s.Join(forks...)
				}
			}
		}
		if cfg.ReduceEvery > 0 && (it+1)%cfg.ReduceEvery == 0 {
			entries := make([]goal.OpID, cfg.Ranks)
			for i, s := range seqs {
				entries[i] = s.Last()
			}
			exits := collective.Allreduce(b, entries, tagReduce, 8)
			for i := range seqs {
				seqs[i] = b.SeqAfter(i, exits[i])
			}
		}
	}
	return b.Build()
}

// SweepConfig configures a 2D wavefront sweep.
type SweepConfig struct {
	Base
	// EdgeBytes is the size of the wavefront messages.
	EdgeBytes int64
}

// Sweep builds a wavefront computation in the style of Sweep3D/PARTISN:
// ranks form a 2D grid, each sweep starts in one corner and propagates
// diagonally — a rank computes only after receiving from its upwind
// neighbors, then feeds its downwind neighbors. Sweeps alternate between
// the southwest and northeast corners. The long dependency chains make this
// the most delay-sensitive skeleton in the suite.
func Sweep(cfg SweepConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.EdgeBytes < 0 {
		return nil, fmt.Errorf("workload: negative edge size")
	}
	px, py := Dims2(cfg.Ranks)
	rankOf := func(x, y int) int { return y*px + x }
	b := goal.NewBuilder(cfg.Ranks)
	reserve(b, cfg.Iterations*cfg.Ranks*5) // ≤2 recvs + calc + ≤2 sends
	seqs := make([]*goal.Sequencer, cfg.Ranks)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	r := cfg.computeSource()
	for it := 0; it < cfg.Iterations; it++ {
		forward := it%2 == 0
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				rank := rankOf(x, y)
				s := seqs[rank]
				// Upwind receives.
				if forward {
					if x > 0 {
						s.Recv(int32(rankOf(x-1, y)), tagSweep, cfg.EdgeBytes)
					}
					if y > 0 {
						s.Recv(int32(rankOf(x, y-1)), tagSweep, cfg.EdgeBytes)
					}
				} else {
					if x < px-1 {
						s.Recv(int32(rankOf(x+1, y)), tagSweep, cfg.EdgeBytes)
					}
					if y < py-1 {
						s.Recv(int32(rankOf(x, y+1)), tagSweep, cfg.EdgeBytes)
					}
				}
				s.Calc(cfg.draw(r))
				// Downwind sends.
				if forward {
					if x < px-1 {
						s.Send(rankOf(x+1, y), tagSweep, cfg.EdgeBytes)
					}
					if y < py-1 {
						s.Send(rankOf(x, y+1), tagSweep, cfg.EdgeBytes)
					}
				} else {
					if x > 0 {
						s.Send(rankOf(x-1, y), tagSweep, cfg.EdgeBytes)
					}
					if y > 0 {
						s.Send(rankOf(x, y-1), tagSweep, cfg.EdgeBytes)
					}
				}
			}
		}
	}
	return b.Build()
}

// CGConfig configures an allreduce-dominated iterative solver skeleton.
type CGConfig struct {
	Base
	// HaloBytes is the sparse-matvec halo exchange size (ring neighbors).
	HaloBytes int64
	// DotBytes is the allreduce payload (8 for a scalar dot product).
	DotBytes int64
	// DotsPerIter is the number of allreduces per iteration (CG does 2).
	DotsPerIter int
}

// CG builds an HPCCG/CG-class skeleton: each iteration does a halo exchange
// with ring neighbors (the sparse matrix-vector product), a computation,
// and DotsPerIter small allreduces (the dot products). Latency-bound at
// scale: the allreduces synchronize all ranks every iteration.
func CG(cfg CGConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.HaloBytes < 0 || cfg.DotBytes < 0 {
		return nil, fmt.Errorf("workload: negative message size")
	}
	if cfg.DotsPerIter <= 0 {
		cfg.DotsPerIter = 2
	}
	if cfg.DotBytes == 0 {
		cfg.DotBytes = 8
	}
	p := cfg.Ranks
	b := goal.NewBuilder(p)
	reserve(b, cfg.Iterations*(p*6+cfg.DotsPerIter*allreduceOps(p)))
	seqs := make([]*goal.Sequencer, p)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	r := cfg.computeSource()
	for it := 0; it < cfg.Iterations; it++ {
		// Halo with ring neighbors (1D decomposition of the matrix rows).
		if p > 1 && cfg.HaloBytes > 0 {
			for i := 0; i < p; i++ {
				s := seqs[i]
				right, left := (i+1)%p, (i-1+p)%p
				var forks []goal.OpID
				forks = append(forks,
					s.Fork(goal.KindSend, int32(right), tagHalo, cfg.HaloBytes),
					s.Fork(goal.KindRecv, int32(left), tagHalo, cfg.HaloBytes))
				if p > 2 {
					forks = append(forks,
						s.Fork(goal.KindSend, int32(left), tagHalo, cfg.HaloBytes),
						s.Fork(goal.KindRecv, int32(right), tagHalo, cfg.HaloBytes))
				}
				s.Join(forks...)
			}
		}
		for _, s := range seqs {
			s.Calc(cfg.draw(r))
		}
		for d := 0; d < cfg.DotsPerIter; d++ {
			entries := make([]goal.OpID, p)
			for i, s := range seqs {
				entries[i] = s.Last()
			}
			exits := collective.Allreduce(b, entries, tagReduce+d, cfg.DotBytes)
			for i := range seqs {
				seqs[i] = b.SeqAfter(i, exits[i])
			}
		}
	}
	return b.Build()
}

// TransposeConfig configures an alltoall-dominated (FFT-class) skeleton.
type TransposeConfig struct {
	Base
	// BlockBytes is the per-pair alltoall message size.
	BlockBytes int64
}

// Transpose builds an FFT-class skeleton: each iteration computes and then
// performs a full alltoall (the distributed transpose). Bandwidth-bound and
// maximally coupled: every rank waits on every other rank every iteration.
func Transpose(cfg TransposeConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.BlockBytes < 0 {
		return nil, fmt.Errorf("workload: negative block size")
	}
	p := cfg.Ranks
	b := goal.NewBuilder(p)
	reserve(b, cfg.Iterations*p*(2*p+2)) // calc + pairwise exchange + join
	seqs := make([]*goal.Sequencer, p)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	r := cfg.computeSource()
	for it := 0; it < cfg.Iterations; it++ {
		for _, s := range seqs {
			s.Calc(cfg.draw(r))
		}
		if p > 1 {
			entries := make([]goal.OpID, p)
			for i, s := range seqs {
				entries[i] = s.Last()
			}
			exits := collective.Alltoall(b, entries, tagPair, cfg.BlockBytes)
			for i := range seqs {
				seqs[i] = b.SeqAfter(i, exits[i])
			}
		}
	}
	return b.Build()
}

// FarmConfig configures a bulk-synchronous master–worker farm.
type FarmConfig struct {
	Base
	// TaskBytes is the master→worker task message size.
	TaskBytes int64
	// ResultBytes is the worker→master result size.
	ResultBytes int64
}

// Farm builds a master–worker farm: each round, rank 0 sends a task to
// every worker, workers compute (with jitter — the source of imbalance) and
// return results, which the master collects with AnySource receives (any
// completion order) before dispatching the next round. The master is a
// serialization point: delay on any worker stalls the whole next round.
func Farm(cfg FarmConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("workload: farm needs at least 2 ranks")
	}
	if cfg.TaskBytes < 0 || cfg.ResultBytes < 0 {
		return nil, fmt.Errorf("workload: negative message size")
	}
	p := cfg.Ranks
	workers := p - 1
	b := goal.NewBuilder(p)
	reserve(b, cfg.Iterations*(workers*5+4)) // dispatch+joins, 3 ops/worker, collect
	master := b.Seq(0)
	wseqs := make([]*goal.Sequencer, workers)
	for i := range wseqs {
		wseqs[i] = b.Seq(i + 1)
	}
	r := cfg.computeSource()
	for it := 0; it < cfg.Iterations; it++ {
		// Dispatch: tasks go out back to back.
		var sends []goal.OpID
		for w := 0; w < workers; w++ {
			sends = append(sends, master.Fork(goal.KindSend, int32(w+1), tagFarm, cfg.TaskBytes))
		}
		master.Join(sends...)
		// Workers compute and reply.
		for _, s := range wseqs {
			s.Recv(0, tagFarm, cfg.TaskBytes)
			s.Calc(cfg.draw(r))
			s.Send(0, tagFarm+1, cfg.ResultBytes)
		}
		// Collect in any order.
		var recvs []goal.OpID
		for w := 0; w < workers; w++ {
			recvs = append(recvs, master.Fork(goal.KindRecv, goal.AnySource, tagFarm+1, cfg.ResultBytes))
		}
		master.Join(recvs...)
		master.Calc(cfg.draw(r) / simtime.Duration(workers+1)) // cheap aggregation
	}
	return b.Build()
}

// EPConfig configures the embarrassingly parallel baseline.
type EPConfig struct {
	Base
	// FinalReduceBytes is the size of the single final reduction (0 for
	// a one-shot 8-byte result).
	FinalReduceBytes int64
}

// EP builds the embarrassingly parallel baseline: pure computation per
// iteration, one reduction at the very end. Its only coupling is the final
// reduce, so checkpoint delays cannot propagate — the control case for
// every propagation experiment.
func EP(cfg EPConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.FinalReduceBytes < 0 {
		return nil, fmt.Errorf("workload: negative reduce size")
	}
	if cfg.FinalReduceBytes == 0 {
		cfg.FinalReduceBytes = 8
	}
	b := goal.NewBuilder(cfg.Ranks)
	reserve(b, cfg.Iterations*cfg.Ranks+allreduceOps(cfg.Ranks))
	entries := make([]goal.OpID, cfg.Ranks)
	r := cfg.computeSource()
	for i := 0; i < cfg.Ranks; i++ {
		s := b.Seq(i)
		for it := 0; it < cfg.Iterations; it++ {
			s.Calc(cfg.draw(r))
		}
		entries[i] = s.Last()
	}
	if cfg.Ranks > 1 {
		collective.Reduce(b, 0, entries, tagFinal, cfg.FinalReduceBytes)
	}
	return b.Build()
}

// RandomNeighborConfig configures the random-pairing workload.
type RandomNeighborConfig struct {
	Base
	// Pairings is the number of random pairings per iteration.
	Pairings int
	// Bytes is the per-exchange message size.
	Bytes int64
}

// RandomNeighbor builds an unstructured communication pattern: every
// iteration draws Pairings random perfect matchings of the ranks (seeded,
// deterministic) and each pair exchanges messages. Models unstructured-mesh
// and particle codes whose neighbor sets have no exploitable geometry.
func RandomNeighbor(cfg RandomNeighborConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Pairings <= 0 {
		cfg.Pairings = 1
	}
	if cfg.Bytes < 0 {
		return nil, fmt.Errorf("workload: negative message size")
	}
	p := cfg.Ranks
	b := goal.NewBuilder(p)
	reserve(b, cfg.Iterations*p*(1+3*cfg.Pairings)) // calc + 2 forks + join per pairing
	seqs := make([]*goal.Sequencer, p)
	for i := range seqs {
		seqs[i] = b.Seq(i)
	}
	jr := cfg.computeSource()
	pr := rng.New(cfg.Seed).Split(0x99)
	for it := 0; it < cfg.Iterations; it++ {
		for _, s := range seqs {
			s.Calc(cfg.draw(jr))
		}
		for k := 0; k < cfg.Pairings; k++ {
			perm := pr.Perm(p)
			for j := 0; j+1 < p; j += 2 {
				a, c := perm[j], perm[j+1]
				sa, sc := seqs[a], seqs[c]
				fa1 := sa.Fork(goal.KindSend, int32(c), tagPair, cfg.Bytes)
				fa2 := sa.Fork(goal.KindRecv, int32(c), tagPair, cfg.Bytes)
				sa.Join(fa1, fa2)
				fc1 := sc.Fork(goal.KindSend, int32(a), tagPair, cfg.Bytes)
				fc2 := sc.Fork(goal.KindRecv, int32(a), tagPair, cfg.Bytes)
				sc.Join(fc1, fc2)
			}
		}
	}
	return b.Build()
}

// StragglerConfig configures a stencil with one persistently slow rank.
type StragglerConfig struct {
	Base
	HaloBytes int64
	// SlowRank is the straggling rank (clamped into range).
	SlowRank int
	// Factor multiplies the straggler's compute (>= 1).
	Factor float64
}

// Straggler builds a 2D stencil in which one rank computes Factor× slower
// every iteration — the static-imbalance counterpart of noise injection.
// With a communicating workload the whole machine runs at the straggler's
// pace; experiment E13 measures how checkpointing protocols interact with
// that (a coordinated round inherits the straggler's lateness, an aligned
// uncoordinated write hides inside the others' wait time).
func Straggler(cfg StragglerConfig) (*goal.Program, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Factor < 1 || math.IsNaN(cfg.Factor) {
		return nil, fmt.Errorf("workload: straggler factor %v < 1", cfg.Factor)
	}
	slow := cfg.SlowRank
	if slow < 0 {
		slow = 0
	}
	if slow >= cfg.Ranks {
		slow = cfg.Ranks - 1
	}
	scale := make([]float64, cfg.Ranks)
	for i := range scale {
		scale[i] = 1
	}
	scale[slow] = cfg.Factor
	return Stencil2D(Stencil2DConfig{
		Base:         cfg.Base,
		HaloBytes:    cfg.HaloBytes,
		ComputeScale: scale,
	})
}
