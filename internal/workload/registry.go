package workload

import (
	"fmt"
	"sort"

	"checkpointsim/internal/goal"
)

// CommonConfig is the parameter set the CLI tools expose; each named
// workload maps it onto its own configuration with sensible defaults.
type CommonConfig struct {
	Base
	// Bytes is the dominant message size (halo/block/task as appropriate).
	Bytes int64
}

// builderFunc adapts a workload constructor to the common config.
type builderFunc func(CommonConfig) (*goal.Program, error)

var registry = map[string]struct {
	build builderFunc
	doc   string
}{
	"stencil2d": {func(c CommonConfig) (*goal.Program, error) {
		return Stencil2D(Stencil2DConfig{Base: c.Base, HaloBytes: c.Bytes, ReduceEvery: 10})
	}, "5-point 2D halo exchange + periodic residual allreduce"},
	"stencil3d": {func(c CommonConfig) (*goal.Program, error) {
		return Stencil3D(Stencil3DConfig{Base: c.Base, HaloBytes: c.Bytes, ReduceEvery: 10})
	}, "7-point 3D halo exchange + periodic residual allreduce"},
	"sweep": {func(c CommonConfig) (*goal.Program, error) {
		return Sweep(SweepConfig{Base: c.Base, EdgeBytes: c.Bytes})
	}, "2D wavefront sweep, alternating corners"},
	"cg": {func(c CommonConfig) (*goal.Program, error) {
		return CG(CGConfig{Base: c.Base, HaloBytes: c.Bytes, DotsPerIter: 2})
	}, "CG/HPCCG class: ring halo + 2 allreduces per iteration"},
	"transpose": {func(c CommonConfig) (*goal.Program, error) {
		return Transpose(TransposeConfig{Base: c.Base, BlockBytes: c.Bytes})
	}, "FFT class: alltoall transpose every iteration"},
	"farm": {func(c CommonConfig) (*goal.Program, error) {
		return Farm(FarmConfig{Base: c.Base, TaskBytes: c.Bytes, ResultBytes: c.Bytes})
	}, "bulk-synchronous master-worker farm"},
	"ep": {func(c CommonConfig) (*goal.Program, error) {
		return EP(EPConfig{Base: c.Base})
	}, "embarrassingly parallel + final reduce (control case)"},
	"random": {func(c CommonConfig) (*goal.Program, error) {
		return RandomNeighbor(RandomNeighborConfig{Base: c.Base, Pairings: 2, Bytes: c.Bytes})
	}, "random pairwise exchanges (unstructured mesh class)"},
	"straggler": {func(c CommonConfig) (*goal.Program, error) {
		return Straggler(StragglerConfig{Base: c.Base, HaloBytes: c.Bytes, Factor: 2})
	}, "2D stencil with one rank computing 2x slower (static imbalance)"},
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a workload name.
func Describe(name string) string { return registry[name].doc }

// FromName builds the named workload from the common configuration.
func FromName(name string, cfg CommonConfig) (*goal.Program, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	return e.build(cfg)
}
