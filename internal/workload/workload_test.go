package workload

import (
	"testing"
	"testing/quick"

	"checkpointsim/internal/goal"
	"checkpointsim/internal/network"
	"checkpointsim/internal/sim"
	"checkpointsim/internal/simtime"
)

func base(ranks, iters int) Base {
	return Base{Ranks: ranks, Iterations: iters, Compute: 50 * simtime.Microsecond, Seed: 1}
}

func mustRun(t *testing.T, p *goal.Program, err error) *sim.Result {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: p, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDims2(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 6: {3, 2}, 12: {4, 3},
		16: {4, 4}, 36: {6, 6}, 7: {7, 1}, 64: {8, 8},
	}
	for p, want := range cases {
		px, py := Dims2(p)
		if px*py != p || px < py {
			t.Errorf("Dims2(%d) = %d,%d invalid", p, px, py)
		}
		if px != want[0] || py != want[1] {
			t.Errorf("Dims2(%d) = %d,%d, want %v", p, px, py, want)
		}
	}
}

func TestDims3(t *testing.T) {
	for _, p := range []int{1, 2, 8, 12, 27, 64, 100, 7} {
		px, py, pz := Dims3(p)
		if px*py*pz != p {
			t.Errorf("Dims3(%d) = %d,%d,%d does not multiply out", p, px, py, pz)
		}
		if px < py || py < pz {
			t.Errorf("Dims3(%d) = %d,%d,%d not ordered", p, px, py, pz)
		}
	}
	if px, py, pz := Dims3(27); px != 3 || py != 3 || pz != 3 {
		t.Errorf("Dims3(27) = %d,%d,%d", px, py, pz)
	}
}

func TestStencil2DShape(t *testing.T) {
	p, err := Stencil2D(Stencil2DConfig{Base: base(16, 3), HaloBytes: 1024})
	r := mustRun(t, p, err)
	// 4x4 grid, non-periodic: interior halo links = px(py-1)+py(px-1) = 24
	// edges, 2 messages each per iteration.
	want := int64(3 * 2 * 24)
	if r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestStencil2DPeriodic(t *testing.T) {
	p, err := Stencil2D(Stencil2DConfig{Base: base(16, 2), HaloBytes: 64, Periodic: true})
	r := mustRun(t, p, err)
	// Torus: every rank has exactly 4 neighbors: 16*4 messages per iter.
	want := int64(2 * 16 * 4)
	if r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestStencil2DReduceEvery(t *testing.T) {
	pNo, err := Stencil2D(Stencil2DConfig{Base: base(8, 4), HaloBytes: 64})
	rNo := mustRun(t, pNo, err)
	pRed, err := Stencil2D(Stencil2DConfig{Base: base(8, 4), HaloBytes: 64, ReduceEvery: 2})
	rRed := mustRun(t, pRed, err)
	if rRed.Metrics.AppMessages <= rNo.Metrics.AppMessages {
		t.Error("ReduceEvery added no messages")
	}
}

func TestStencil2DMinimumWork(t *testing.T) {
	// Makespan is at least iterations * compute.
	cfg := Stencil2DConfig{Base: base(9, 5), HaloBytes: 512}
	p, err := Stencil2D(cfg)
	r := mustRun(t, p, err)
	min := simtime.Time(int64(cfg.Iterations) * int64(cfg.Compute))
	if r.Makespan < min {
		t.Errorf("makespan %v < serial compute %v", r.Makespan, min)
	}
}

func TestStencil3DShape(t *testing.T) {
	p, err := Stencil3D(Stencil3DConfig{Base: base(27, 2), HaloBytes: 256, Periodic: true})
	r := mustRun(t, p, err)
	// 3x3x3 torus: 6 neighbors each.
	want := int64(2 * 27 * 6)
	if r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestStencil3DNonPeriodic(t *testing.T) {
	p, err := Stencil3D(Stencil3DConfig{Base: base(8, 2), HaloBytes: 256})
	r := mustRun(t, p, err)
	// 2x2x2: each rank has 3 neighbors: 8*3 = 24 msgs/iter.
	if want := int64(2 * 24); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestSweepWavefrontOrdering(t *testing.T) {
	// In a forward sweep, the far corner cannot finish before the serial
	// chain of upwind computations.
	cfg := SweepConfig{Base: base(16, 1), EdgeBytes: 128}
	p, err := Sweep(cfg)
	r := mustRun(t, p, err)
	// 4x4 grid: the last corner is 7 hops of compute deep (diagonal).
	minDepth := simtime.Time(7 * int64(cfg.Compute))
	if r.RankFinish[15] < minDepth {
		t.Errorf("far corner finished at %v, before wavefront depth %v",
			r.RankFinish[15], minDepth)
	}
	// Messages: 2 per interior edge per sweep: px(py-1)+py(px-1) = 24.
	if want := int64(24); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestSweepAlternatesDirection(t *testing.T) {
	p, err := Sweep(SweepConfig{Base: base(4, 2), EdgeBytes: 64})
	r := mustRun(t, p, err)
	// Both sweeps complete; 2x2 grid has 4 edges * 2 sweeps.
	if want := int64(8); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestCGShape(t *testing.T) {
	p, err := CG(CGConfig{Base: base(8, 3), HaloBytes: 2048, DotsPerIter: 2})
	r := mustRun(t, p, err)
	// Per iteration: 8 ranks * 2 ring sends + 2 allreduces (24 msgs each
	// for P=8 power of two).
	want := int64(3 * (8*2 + 2*24))
	if r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestCGDefaults(t *testing.T) {
	p, err := CG(CGConfig{Base: base(4, 2)}) // zero dot bytes/dots default
	mustRun(t, p, err)
}

func TestCGTwoRanks(t *testing.T) {
	p, err := CG(CGConfig{Base: base(2, 2), HaloBytes: 64})
	r := mustRun(t, p, err)
	if r.Metrics.AppMessages == 0 {
		t.Error("no messages in 2-rank CG")
	}
}

func TestTransposeShape(t *testing.T) {
	p, err := Transpose(TransposeConfig{Base: base(6, 2), BlockBytes: 512})
	r := mustRun(t, p, err)
	if want := int64(2 * 6 * 5); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestFarmShape(t *testing.T) {
	p, err := Farm(FarmConfig{Base: base(5, 3), TaskBytes: 256, ResultBytes: 1024})
	r := mustRun(t, p, err)
	// Per round: 4 tasks + 4 results.
	if want := int64(3 * 8); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestFarmNeedsTwoRanks(t *testing.T) {
	if _, err := Farm(FarmConfig{Base: base(1, 1)}); err == nil {
		t.Error("1-rank farm accepted")
	}
}

func TestEPHasNoCouplingUntilEnd(t *testing.T) {
	p, err := EP(EPConfig{Base: base(8, 4)})
	r := mustRun(t, p, err)
	if want := int64(7); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d (final reduce only)", r.Metrics.AppMessages, want)
	}
}

func TestEPSingleRank(t *testing.T) {
	p, err := EP(EPConfig{Base: base(1, 3)})
	r := mustRun(t, p, err)
	if r.Metrics.AppMessages != 0 {
		t.Error("single-rank EP sent messages")
	}
	if r.Makespan != simtime.Time(3*int64(50*simtime.Microsecond)) {
		t.Errorf("makespan = %v", r.Makespan)
	}
}

func TestRandomNeighborDeterministicBySeed(t *testing.T) {
	cfg := RandomNeighborConfig{Base: base(9, 3), Pairings: 2, Bytes: 256}
	p1, err1 := RandomNeighbor(cfg)
	p2, err2 := RandomNeighbor(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if goal.WriteString(p1) != goal.WriteString(p2) {
		t.Error("same seed produced different programs")
	}
	cfg.Seed = 2
	p3, _ := RandomNeighbor(cfg)
	if goal.WriteString(p1) == goal.WriteString(p3) {
		t.Error("different seeds produced identical programs")
	}
	mustRun(t, p1, nil)
}

func TestRandomNeighborOddRanks(t *testing.T) {
	p, err := RandomNeighbor(RandomNeighborConfig{Base: base(7, 2), Pairings: 1, Bytes: 64})
	r := mustRun(t, p, err)
	// 3 pairs per pairing, 2 msgs per pair, 2 iterations.
	if want := int64(2 * 3 * 2); r.Metrics.AppMessages != want {
		t.Errorf("messages = %d, want %d", r.Metrics.AppMessages, want)
	}
}

func TestJitterChangesProgramNotStructure(t *testing.T) {
	flat, _ := Stencil2D(Stencil2DConfig{Base: base(4, 2), HaloBytes: 64})
	jit, err := Stencil2D(Stencil2DConfig{
		Base:      Base{Ranks: 4, Iterations: 2, Compute: 50 * simtime.Microsecond, Jitter: 0.2, Seed: 3},
		HaloBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sf, sj := flat.Stats(), jit.Stats()
	if sf.NumOps != sj.NumOps || sf.NumSend != sj.NumSend {
		t.Error("jitter changed program structure")
	}
	if sf.TotalWork == sj.TotalWork {
		t.Error("jitter did not perturb compute durations")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Base{
		{Ranks: 0, Iterations: 1, Compute: 1},
		{Ranks: 1, Iterations: 0, Compute: 1},
		{Ranks: 1, Iterations: 1, Compute: -1},
		{Ranks: 1, Iterations: 1, Compute: 1, Jitter: -0.5},
	}
	for i, b := range bad {
		if _, err := Stencil2D(Stencil2DConfig{Base: b}); err == nil {
			t.Errorf("bad base %d accepted", i)
		}
	}
	if _, err := Stencil2D(Stencil2DConfig{Base: base(4, 1), HaloBytes: -1}); err == nil {
		t.Error("negative halo accepted")
	}
	if _, err := Sweep(SweepConfig{Base: base(4, 1), EdgeBytes: -1}); err == nil {
		t.Error("negative edge accepted")
	}
	if _, err := Transpose(TransposeConfig{Base: base(4, 1), BlockBytes: -1}); err == nil {
		t.Error("negative block accepted")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry too small: %v", names)
	}
	for _, n := range names {
		if Describe(n) == "" {
			t.Errorf("%s has no description", n)
		}
		p, err := FromName(n, CommonConfig{Base: base(8, 2), Bytes: 512})
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		mustRun(t, p, nil)
	}
	if _, err := FromName("bogus", CommonConfig{Base: base(4, 1)}); err == nil {
		t.Error("unknown name accepted")
	}
}

// Property: every registered workload builds a balanced, deadlock-free
// program at arbitrary small scales and completes in the simulator.
func TestQuickAllWorkloadsRun(t *testing.T) {
	names := Names()
	f := func(seed uint8) bool {
		ranks := int(seed)%7 + 2
		name := names[int(seed)%len(names)]
		cfg := CommonConfig{
			Base:  Base{Ranks: ranks, Iterations: 2, Compute: 10 * simtime.Microsecond, Jitter: 0.1, Seed: uint64(seed)},
			Bytes: 128,
		}
		p, err := FromName(name, cfg)
		if err != nil {
			return false
		}
		if err := p.CheckBalanced(); err != nil {
			return false
		}
		e, err := sim.New(sim.Config{Net: network.DefaultParams(), Program: p, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		_, err = e.Run()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStragglerSlowsMachine(t *testing.T) {
	balanced, err := Straggler(StragglerConfig{Base: base(16, 10), HaloBytes: 1024, Factor: 1})
	rBal := mustRun(t, balanced, err)
	slowed, err := Straggler(StragglerConfig{Base: base(16, 10), HaloBytes: 1024, Factor: 3, SlowRank: 5})
	rSlow := mustRun(t, slowed, err)
	// With a coupled stencil, the whole machine runs at the straggler's
	// pace: makespan ≈ factor × balanced.
	ratio := float64(rSlow.Makespan) / float64(rBal.Makespan)
	if ratio < 2.0 {
		t.Errorf("straggler ratio %v, want ≈3 (propagated)", ratio)
	}
}

func TestStragglerValidation(t *testing.T) {
	if _, err := Straggler(StragglerConfig{Base: base(4, 2), Factor: 0.5}); err == nil {
		t.Error("factor < 1 accepted")
	}
	// Out-of-range slow ranks clamp rather than fail.
	p, err := Straggler(StragglerConfig{Base: base(4, 2), HaloBytes: 64, Factor: 2, SlowRank: 99})
	mustRun(t, p, err)
	p, err = Straggler(StragglerConfig{Base: base(4, 2), HaloBytes: 64, Factor: 2, SlowRank: -1})
	mustRun(t, p, err)
}

func TestComputeScaleValidation(t *testing.T) {
	if _, err := Stencil2D(Stencil2DConfig{Base: base(4, 2), ComputeScale: []float64{1, 2}}); err == nil {
		t.Error("wrong-length scale accepted")
	}
	if _, err := Stencil2D(Stencil2DConfig{Base: base(2, 2), ComputeScale: []float64{1, -1}}); err == nil {
		t.Error("negative scale accepted")
	}
}

// Cross-check: for every registered workload, the contention-free critical
// path lower-bounds the simulated makespan, and the gap stays plausible
// (the simulator only adds endpoint contention, not orders of magnitude).
func TestCriticalPathBoundsAllWorkloads(t *testing.T) {
	net := network.DefaultParams()
	for _, name := range Names() {
		p, err := FromName(name, CommonConfig{
			Base:  Base{Ranks: 9, Iterations: 3, Compute: simtime.Millisecond, Seed: 2},
			Bytes: 2048,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cp, path := goal.CriticalPath(p, net)
		e, err := sim.New(sim.Config{Net: net, Program: p, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if simtime.Duration(r.Makespan) < cp {
			t.Errorf("%s: makespan %v below critical path %v", name, r.Makespan, cp)
		}
		if len(path) == 0 {
			t.Errorf("%s: empty critical path", name)
		}
		if float64(r.Makespan) > 20*float64(cp) {
			t.Errorf("%s: makespan %v implausibly far above bound %v", name, r.Makespan, cp)
		}
	}
}
