package model

import (
	"math"
	"testing"
	"testing/quick"

	"checkpointsim/internal/network"
)

func TestYoungInterval(t *testing.T) {
	// δ=60s, M=12h: τ = sqrt(2*60*43200) = 2276.8s.
	got := YoungInterval(60, 43200)
	if math.Abs(got-2276.84) > 0.1 {
		t.Errorf("Young = %v", got)
	}
	if !math.IsNaN(YoungInterval(0, 1)) || !math.IsNaN(YoungInterval(1, -1)) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestDalyReducesToYoungForSmallDelta(t *testing.T) {
	// For δ << M, Daly ≈ Young − δ.
	delta, m := 1.0, 1e6
	young := YoungInterval(delta, m)
	daly := DalyInterval(delta, m)
	if math.Abs(daly-(young-delta)) > 0.01*young {
		t.Errorf("Daly %v vs Young-δ %v", daly, young-delta)
	}
}

func TestDalyLargeDeltaClamp(t *testing.T) {
	if got := DalyInterval(10, 4); got != 4 {
		t.Errorf("Daly(δ>=2M) = %v, want M", got)
	}
}

func TestExpectedRuntimeSanity(t *testing.T) {
	// No failures in the limit M→∞: T → Ts·(1 + δ/τ).
	ts, delta, tau := 3600.0, 10.0, 100.0
	got := ExpectedRuntime(ts, delta, 0, 1e12, tau)
	want := ts * (tau + delta) / tau
	if math.Abs(got-want) > 1e-3*want {
		t.Errorf("runtime %v, want ~%v", got, want)
	}
	// Runtime exceeds useful work.
	if ExpectedRuntime(100, 5, 5, 1000, 50) <= 100 {
		t.Error("runtime should exceed useful work")
	}
	if !math.IsNaN(ExpectedRuntime(1, 1, 1, 0, 1)) {
		t.Error("bad MTBF should give NaN")
	}
}

func TestDalyIntervalIsNearOptimal(t *testing.T) {
	// The closed-form optimum should be within a few percent of the
	// numeric optimum in runtime terms.
	for _, c := range []struct{ delta, r, m float64 }{
		{10, 10, 3600},
		{60, 120, 7200},
		{5, 5, 500},
		{1, 1, 86400},
	} {
		tauD := DalyInterval(c.delta, c.m)
		tauN := OptimalIntervalNumeric(c.delta, c.r, c.m, c.delta/10, c.m*10)
		rd := ExpectedRuntime(1, c.delta, c.r, c.m, tauD)
		rn := ExpectedRuntime(1, c.delta, c.r, c.m, tauN)
		if rd > rn*1.02 {
			t.Errorf("δ=%v M=%v: Daly runtime %v vs numeric %v (τ %v vs %v)",
				c.delta, c.m, rd, rn, tauD, tauN)
		}
	}
}

func TestEfficiencyBounds(t *testing.T) {
	eff := Efficiency(10, 10, 3600, DalyInterval(10, 3600))
	if eff <= 0 || eff >= 1 {
		t.Errorf("efficiency = %v, want in (0,1)", eff)
	}
	// Longer MTBF → higher efficiency at respective optima.
	effBad := Efficiency(10, 10, 100, DalyInterval(10, 100))
	if effBad >= eff {
		t.Errorf("efficiency should degrade with failures: %v vs %v", effBad, eff)
	}
}

func TestSystemMTBF(t *testing.T) {
	if got := SystemMTBF(86400, 24); got != 3600 {
		t.Errorf("SystemMTBF = %v", got)
	}
	if !math.IsNaN(SystemMTBF(0, 5)) || !math.IsNaN(SystemMTBF(5, 0)) {
		t.Error("degenerate inputs should give NaN")
	}
}

func TestTreeDepth(t *testing.T) {
	// Brute-force reference: max popcount over all virtual ranks below p.
	brute := func(p int) int {
		want := 0
		for v := 0; v < p; v++ {
			c := 0
			for x := v; x > 0; x &= x - 1 {
				c++
			}
			if c > want {
				want = c
			}
		}
		return want
	}
	for p := 1; p <= 5000; p++ {
		if got := TreeDepth(p); got != brute(p) {
			t.Fatalf("TreeDepth(%d) = %d, want %d", p, got, brute(p))
		}
	}
	// Adversarial shapes around powers of two and all-ones runs, where the
	// closed form's candidate set is exercised hardest.
	for _, base := range []int{1 << 10, 1 << 16, 1 << 20} {
		for d := -3; d <= 3; d++ {
			p := base + d
			if got := TreeDepth(p); got != brute(p) {
				t.Fatalf("TreeDepth(%d) = %d, want %d", p, got, brute(p))
			}
		}
	}
	cases := map[int]int{1: 0, 2: 1, 4: 2, 8: 3, 1024: 10, 1025: 10}
	for p, want := range cases {
		if got := TreeDepth(p); got != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestCoordinationDelayGrowsLogarithmically(t *testing.T) {
	net := network.DefaultParams()
	d64 := CoordinationDelay(64, net, 64)
	d4096 := CoordinationDelay(4096, net, 64)
	if d64 <= 0 {
		t.Fatal("zero coordination delay")
	}
	if ratio := d4096 / d64; math.Abs(ratio-2.0) > 0.01 {
		t.Errorf("coordination 4096/64 ratio = %v, want 2 (12/6 tree depth)", ratio)
	}
	if CoordinationDelay(1, net, 64) != 0 {
		t.Error("single rank needs no coordination")
	}
}

func TestProjectionsBehave(t *testing.T) {
	base := ProtocolProjection{
		Nodes:    1024,
		NodeMTBF: 5 * 365 * 86400, // 5 years
		Write:    60,
		Restart:  120,
	}
	ce := CoordinatedEfficiency(base)
	ue := UncoordinatedEfficiency(base)
	if ce <= 0 || ce >= 1 || ue <= 0 || ue >= 1 {
		t.Fatalf("efficiencies out of range: %v %v", ce, ue)
	}
	// With zero logging overhead and replay speedup, uncoordinated wins.
	if !Crossover(base) {
		t.Errorf("free logging should favor uncoordinated: %v vs %v", ue, ce)
	}
	// With crushing logging overhead, coordinated wins.
	heavy := base
	heavy.LogOverhead = 2.0
	if Crossover(heavy) {
		t.Errorf("200%% logging overhead should favor coordinated")
	}
	if base.String() == "" {
		t.Error("empty projection string")
	}
}

func TestCrossoverMovesWithScale(t *testing.T) {
	// At modest logging overhead, coordinated wins at small P and
	// uncoordinated wins at large P.
	pr := ProtocolProjection{
		NodeMTBF:    5 * 365 * 86400,
		Write:       120,
		Restart:     120,
		LogOverhead: 0.10,
	}
	small := pr
	small.Nodes = 8
	big := pr
	big.Nodes = 262144
	if Crossover(small) {
		t.Errorf("uncoordinated should lose at P=8: u=%v c=%v",
			UncoordinatedEfficiency(small), CoordinatedEfficiency(small))
	}
	if !Crossover(big) {
		t.Errorf("uncoordinated should win at P=256k: u=%v c=%v",
			UncoordinatedEfficiency(big), CoordinatedEfficiency(big))
	}
}

// Property: expected runtime is minimized near the numeric optimum —
// perturbing τ away from it never helps.
func TestQuickNumericOptimum(t *testing.T) {
	f := func(a, b uint8) bool {
		delta := float64(a)/8 + 0.5
		m := float64(b)*20 + 100
		tau := OptimalIntervalNumeric(delta, delta, m, delta/10, m*10)
		r0 := ExpectedRuntime(1, delta, delta, m, tau)
		return ExpectedRuntime(1, delta, delta, m, tau*1.3) >= r0*0.999 &&
			ExpectedRuntime(1, delta, delta, m, tau/1.3) >= r0*0.999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: efficiency is always in (0, 1] and decreases as δ grows.
func TestQuickEfficiencyMonotoneInDelta(t *testing.T) {
	f := func(a uint8) bool {
		m := 10000.0
		d1 := float64(a%50) + 1
		d2 := d1 * 2
		e1 := Efficiency(d1, 10, m, DalyInterval(d1, m))
		e2 := Efficiency(d2, 10, m, DalyInterval(d2, m))
		return e1 > 0 && e1 <= 1 && e2 <= e1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoLevelIntervals(t *testing.T) {
	// δ_L=0.1ms, δ_G=4ms, M=125ms, coverage 0.8.
	tl, tg := TwoLevelIntervals(0.0001, 0.004, 0.125, 0.8)
	if math.IsNaN(tl) || math.IsNaN(tg) {
		t.Fatal("NaN intervals")
	}
	if tl >= tg {
		t.Errorf("local interval %v should be below global %v", tl, tg)
	}
	// Each matches Daly at the per-level rates.
	if want := DalyInterval(0.0001, 0.125/0.8); math.Abs(tl-want) > 1e-12 {
		t.Errorf("tauL = %v, want %v", tl, want)
	}
	if want := DalyInterval(0.004, 0.125/0.2); math.Abs(tg-want) > 1e-12 {
		t.Errorf("tauG = %v, want %v", tg, want)
	}
	// Higher coverage stretches the global interval.
	_, tg95 := TwoLevelIntervals(0.0001, 0.004, 0.125, 0.95)
	if tg95 <= tg {
		t.Errorf("coverage 0.95 global interval %v not above 0.8's %v", tg95, tg)
	}
	// Degenerate inputs.
	if a, b := TwoLevelIntervals(1, 1, 1, 0); !math.IsNaN(a) || !math.IsNaN(b) {
		t.Error("coverage 0 should give NaN")
	}
	if a, _ := TwoLevelIntervals(1, 1, 0, 0.5); !math.IsNaN(a) {
		t.Error("zero MTBF should give NaN")
	}
	// Clamp: huge local write with tiny global write cannot invert levels.
	tl2, tg2 := TwoLevelIntervals(1.0, 0.0001, 10, 0.5)
	if tg2 < tl2 {
		t.Errorf("levels inverted: %v > %v", tl2, tg2)
	}
}
