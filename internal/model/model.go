// Package model implements the closed-form checkpointing performance
// models the simulation results are validated against: Young's and Daly's
// optimal checkpoint intervals, Daly's expected-runtime model under
// exponential failures, the binomial-tree coordination cost model, and
// first-order efficiency-at-scale projections for the coordinated and
// uncoordinated protocols.
//
// All durations are float64 seconds in this package — the closed forms
// involve exp/sqrt and gain nothing from integer nanoseconds. Conversions
// from simtime happen at the caller.
package model

import (
	"fmt"
	"math"
	"math/bits"

	"checkpointsim/internal/network"
)

// YoungInterval returns Young's first-order optimal checkpoint interval
// τ = sqrt(2·δ·M), where δ is the checkpoint cost and M the (system) MTBF,
// in seconds.
func YoungInterval(delta, mtbf float64) float64 {
	if delta <= 0 || mtbf <= 0 {
		return math.NaN()
	}
	return math.Sqrt(2 * delta * mtbf)
}

// DalyInterval returns Daly's higher-order optimal interval:
//
//	τ = sqrt(2δM)·[1 + (1/3)·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ   for δ < 2M
//	τ = M                                                          otherwise
func DalyInterval(delta, mtbf float64) float64 {
	if delta <= 0 || mtbf <= 0 {
		return math.NaN()
	}
	if delta >= 2*mtbf {
		return mtbf
	}
	x := delta / (2 * mtbf)
	return math.Sqrt(2*delta*mtbf)*(1+math.Sqrt(x)/3+x/9) - delta
}

// ExpectedRuntime returns Daly's expected total wall-clock time to complete
// Ts seconds of useful work with checkpoint cost delta, restart cost r,
// system MTBF M, and checkpoint interval tau (all seconds), under
// exponential failures:
//
//	T = M·e^{r/M}·(e^{(τ+δ)/M} − 1)·Ts/τ
func ExpectedRuntime(ts, delta, r, mtbf, tau float64) float64 {
	if ts < 0 || delta < 0 || r < 0 || mtbf <= 0 || tau <= 0 {
		return math.NaN()
	}
	return mtbf * math.Exp(r/mtbf) * (math.Exp((tau+delta)/mtbf) - 1) * ts / tau
}

// Efficiency returns useful-work efficiency Ts/T for the given parameters.
func Efficiency(delta, r, mtbf, tau float64) float64 {
	t := ExpectedRuntime(1, delta, r, mtbf, tau)
	if math.IsNaN(t) || t <= 0 {
		return math.NaN()
	}
	return 1 / t
}

// OptimalIntervalNumeric finds the runtime-minimizing interval by golden-
// section search over [lo, hi] (seconds). It exists to validate the closed
// forms and to handle regimes where Daly's expansion degrades.
func OptimalIntervalNumeric(delta, r, mtbf, lo, hi float64) float64 {
	if !(lo > 0) || !(hi > lo) {
		return math.NaN()
	}
	f := func(tau float64) float64 { return ExpectedRuntime(1, delta, r, mtbf, tau) }
	const phi = 0.6180339887498949
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 200 && (b-a) > 1e-9*(1+b); i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// SystemMTBF returns the machine MTBF given per-node MTBF and node count.
func SystemMTBF(nodeMTBF float64, nodes int) float64 {
	if nodes <= 0 || nodeMTBF <= 0 {
		return math.NaN()
	}
	return nodeMTBF / float64(nodes)
}

// TreeDepth returns the binomial-tree depth used by the coordination
// protocol: the maximum popcount over virtual ranks below p. Closed form in
// O(log p): the maximum is attained either at x = p-1 itself or at one of
// the values obtained from x by clearing a set bit and setting every bit
// below it (each such value is < x, and any v < p agrees with x on some
// prefix, has a 0 where x has 1, and is maximized by all-ones below — so
// every candidate maximum is of this shape).
func TreeDepth(p int) int {
	if p <= 1 {
		return 0
	}
	x := uint(p - 1)
	best := bits.OnesCount(x)
	for i := 0; i < bits.Len(x); i++ {
		if x&(1<<i) != 0 {
			cand := (x &^ (1 << i)) | (1<<i - 1)
			if c := bits.OnesCount(cand); c > best {
				best = c
			}
		}
	}
	return best
}

// CoordinationDelay returns the closed-form minimum latency of one
// two-sweep (request + ack) coordination pass over a binomial tree of p
// ranks with control messages of ctlBytes, on an otherwise idle machine:
// 2·depth hops, each costing SendCPU + Wire + RecvCPU. Synchronization
// idling (waiting for ranks to reach an op boundary) comes on top of this —
// that gap is exactly what experiment E3 measures.
func CoordinationDelay(p int, net network.Params, ctlBytes int64) float64 {
	depth := TreeDepth(p)
	hop := net.SendCPU(ctlBytes) + net.Wire(ctlBytes) + net.RecvCPU(ctlBytes)
	return 2 * float64(depth) * hop.Seconds()
}

// ProtocolProjection holds the inputs of a first-order protocol-efficiency
// projection at one scale.
type ProtocolProjection struct {
	// Nodes is the machine size P.
	Nodes int
	// NodeMTBF is the per-node MTBF in seconds.
	NodeMTBF float64
	// Write is the per-checkpoint write cost δ in seconds.
	Write float64
	// Restart is the recovery restart cost in seconds.
	Restart float64
	// CoordDelay is the per-round coordination cost in seconds (coordinated
	// protocols; 0 for uncoordinated).
	CoordDelay float64
	// LogOverhead is the fractional slowdown of useful work due to message
	// logging (uncoordinated protocols; 0 for coordinated).
	LogOverhead float64
	// ReplaySpeedup is the log-replay speedup (uncoordinated; 0 → 2).
	ReplaySpeedup float64
}

// CoordinatedEfficiency projects the efficiency of globally coordinated
// checkpointing at the Daly-optimal interval: the effective checkpoint cost
// is δ + coordination, all ranks lose rolled-back work together.
func CoordinatedEfficiency(pr ProtocolProjection) float64 {
	m := SystemMTBF(pr.NodeMTBF, pr.Nodes)
	deltaEff := pr.Write + pr.CoordDelay
	tau := DalyInterval(deltaEff, m)
	if math.IsNaN(tau) || tau <= 0 {
		return math.NaN()
	}
	return Efficiency(deltaEff, pr.Restart, m, tau)
}

// UncoordinatedEfficiency projects the efficiency of uncoordinated
// checkpointing with message logging: useful work is stretched by the
// logging overhead; failures cost only the failed rank's rework, replayed
// at a speedup, so the machine-level penalty per failure is the restart
// plus lost/speedup (others largely overlap — the first-order model treats
// the machine as stalled for that long, a pessimistic bound for loosely
// coupled codes and a reasonable one for tightly coupled codes).
func UncoordinatedEfficiency(pr ProtocolProjection) float64 {
	m := SystemMTBF(pr.NodeMTBF, pr.Nodes)
	sp := pr.ReplaySpeedup
	if sp == 0 {
		sp = 2
	}
	tau := DalyInterval(pr.Write, m*sp) // rework is cheaper by the speedup
	if math.IsNaN(tau) || tau <= 0 {
		return math.NaN()
	}
	eff := Efficiency(pr.Write, pr.Restart, m*sp, tau)
	return eff / (1 + pr.LogOverhead)
}

// Crossover reports whether the uncoordinated projection beats the
// coordinated one at the given point.
func Crossover(pr ProtocolProjection) bool {
	return UncoordinatedEfficiency(pr) > CoordinatedEfficiency(pr)
}

// String renders a projection point for reports.
func (pr ProtocolProjection) String() string {
	return fmt.Sprintf("P=%d θ=%.3gs δ=%.3gs R=%.3gs coord=%.3gs log=%.3g",
		pr.Nodes, pr.NodeMTBF, pr.Write, pr.Restart, pr.CoordDelay, pr.LogOverhead)
}

// TwoLevelIntervals returns the per-level checkpoint intervals for a
// two-level protocol: each level is given Daly's optimal interval for the
// failure rate it actually serves. With system MTBF M and local coverage c
// (the fraction of failures recoverable from the fast level), the local
// level sees an effective MTBF of M/c and the global level M/(1−c). The
// global interval is clamped to at least the local one (levels must not
// invert). This is the first-order version of the multilevel interval
// optimization (Di/Cappello-style); experiment E16 shows it is the
// difference between multilevel checkpointing winning and losing.
func TwoLevelIntervals(deltaLocal, deltaGlobal, mtbf, coverage float64) (tauLocal, tauGlobal float64) {
	if !(coverage > 0 && coverage < 1) || mtbf <= 0 {
		return math.NaN(), math.NaN()
	}
	tauLocal = DalyInterval(deltaLocal, mtbf/coverage)
	tauGlobal = DalyInterval(deltaGlobal, mtbf/(1-coverage))
	if tauGlobal < tauLocal {
		tauGlobal = tauLocal
	}
	return tauLocal, tauGlobal
}
