package checkpointsim

import (
	"testing"

	"checkpointsim/internal/cache"
)

func facadeKey(cfg RunConfig) string { return cache.Key("test", cfg.CacheFields()) }

func baseCfg() RunConfig {
	return RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 20,
		Compute:    Millisecond,
		MsgBytes:   4096,
		Seed:       1,
		Protocol: ProtocolConfig{
			Kind:     ProtoCoordinated,
			Interval: 10 * Millisecond,
			Write:    Millisecond,
		},
	}
}

// Every declarative knob moves the key; the Trace observer does not.
func TestRunConfigCacheFields(t *testing.T) {
	ref := facadeKey(baseCfg())
	mutations := map[string]func(*RunConfig){
		"workload":       func(c *RunConfig) { c.Workload = "ring" },
		"ranks":          func(c *RunConfig) { c.Ranks = 32 },
		"iterations":     func(c *RunConfig) { c.Iterations = 21 },
		"compute":        func(c *RunConfig) { c.Compute = 2 * Millisecond },
		"jitter":         func(c *RunConfig) { c.Jitter = 0.1 },
		"msg bytes":      func(c *RunConfig) { c.MsgBytes = 8192 },
		"seed":           func(c *RunConfig) { c.Seed = 2 },
		"max time":       func(c *RunConfig) { c.MaxTime = Time(Hour) },
		"net":            func(c *RunConfig) { c.Net = DefaultNetwork(); c.Net.Latency *= 2 },
		"storage":        func(c *RunConfig) { c.Storage.AggregateBytesPerSec = 1e9 },
		"protocol kind":  func(c *RunConfig) { c.Protocol.Kind = ProtoUncoordinated },
		"interval":       func(c *RunConfig) { c.Protocol.Interval = 20 * Millisecond },
		"write":          func(c *RunConfig) { c.Protocol.Write = 2 * Millisecond },
		"offset":         func(c *RunConfig) { c.Protocol.Offset = "random" },
		"logging alpha":  func(c *RunConfig) { c.Protocol.Logging.Alpha = Microsecond },
		"logging beta":   func(c *RunConfig) { c.Protocol.Logging.BetaNsPerByte = 0.5 },
		"cluster":        func(c *RunConfig) { c.Protocol.ClusterSize = 8 },
		"incremental":    func(c *RunConfig) { c.Protocol.Incremental = IncrementalParams{FullEvery: 4, Fraction: 0.25} },
		"window":         func(c *RunConfig) { c.Protocol.Window = Millisecond },
		"slowdown":       func(c *RunConfig) { c.Protocol.Slowdown = 1.1 },
		"ckpt bytes":     func(c *RunConfig) { c.Protocol.CkptBytes = 1 << 20 },
		"proto bytes":    func(c *RunConfig) { c.Protocol.Bytes = 1 << 20 },
		"two-level":      func(c *RunConfig) { c.Protocol.TwoLevel.LocalInterval = Millisecond },
		"noise attached": func(c *RunConfig) { c.Noise = &NoiseConfig{Period: Millisecond, Duration: Microsecond} },
		"failures":       func(c *RunConfig) { c.Failures = &FailureConfig{MTBF: Hour} },
		"replica degree": func(c *RunConfig) { c.Protocol.ReplicaDegree = 2 },
		"hb period":      func(c *RunConfig) { c.Protocol.HeartbeatPeriod = 2 * Millisecond },
		"hb bytes":       func(c *RunConfig) { c.Protocol.HeartbeatBytes = 128 },
		"takeover cost":  func(c *RunConfig) { c.Protocol.TakeoverCost = Millisecond },
		"cic lag":        func(c *RunConfig) { c.Protocol.CICLag = 3 },
	}
	for name, mutate := range mutations {
		cfg := baseCfg()
		mutate(&cfg)
		if facadeKey(cfg) == ref {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}

	traced := baseCfg()
	traced.Trace = func(TraceEvent) {}
	if facadeKey(traced) != ref {
		t.Error("Trace observer leaked into the cache key")
	}
}

// Noise config values are distinguished once noise is attached, and the
// zero Net resolves to the default so both spellings share an entry.
func TestRunConfigCacheFieldsResolution(t *testing.T) {
	a, b := baseCfg(), baseCfg()
	a.Noise = &NoiseConfig{Period: Millisecond, Duration: Microsecond}
	b.Noise = &NoiseConfig{Period: Millisecond, Duration: 2 * Microsecond}
	if facadeKey(a) == facadeKey(b) {
		t.Error("distinct noise configs share a key")
	}

	explicit := baseCfg()
	explicit.Net = DefaultNetwork()
	if facadeKey(baseCfg()) != facadeKey(explicit) {
		t.Error("zero Net and DefaultNetwork() produce different keys")
	}
}
