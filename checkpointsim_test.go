package checkpointsim

import (
	"testing"
)

func TestRunQuickstart(t *testing.T) {
	res, err := Run(RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 20,
		Compute:    Millisecond,
		MsgBytes:   4096,
		Protocol: ProtocolConfig{
			Kind:     ProtoCoordinated,
			Interval: 10 * Millisecond,
			Write:    Millisecond,
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if res.Protocol.Name() != "coordinated" {
		t.Errorf("protocol = %q", res.Protocol.Name())
	}
	if res.Protocol.Stats().Writes == 0 {
		t.Error("no checkpoint writes")
	}
}

func TestRunAllProtocolKinds(t *testing.T) {
	base := RunConfig{
		Workload:   "cg",
		Ranks:      8,
		Iterations: 10,
		Compute:    Millisecond,
		MsgBytes:   512,
		Seed:       2,
	}
	kinds := []ProtocolConfig{
		{},
		{Kind: ProtoNone},
		{Kind: ProtoCoordinated, Interval: 5 * Millisecond, Write: 100 * Microsecond},
		{Kind: ProtoUncoordinated, Interval: 5 * Millisecond, Write: 100 * Microsecond,
			Offset: "random", Logging: LogParams{Alpha: Microsecond}},
		{Kind: ProtoHierarchical, Interval: 5 * Millisecond, Write: 100 * Microsecond,
			ClusterSize: 4},
	}
	for i, pc := range kinds {
		cfg := base
		cfg.Protocol = pc
		if _, err := Run(cfg); err != nil {
			t.Errorf("kind %d (%q): %v", i, pc.Kind, err)
		}
	}
	cfg := base
	cfg.Protocol = ProtocolConfig{Kind: "bogus"}
	if _, err := Run(cfg); err == nil {
		t.Error("bogus protocol accepted")
	}
	cfg.Protocol = ProtocolConfig{Kind: ProtoUncoordinated, Interval: Millisecond, Offset: "bogus"}
	if _, err := Run(cfg); err == nil {
		t.Error("bogus offset accepted")
	}
}

func TestRunWithNoiseAndFailures(t *testing.T) {
	res, err := Run(RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 40,
		Compute:    Millisecond,
		MsgBytes:   2048,
		Protocol: ProtocolConfig{
			Kind:     ProtoUncoordinated,
			Interval: 5 * Millisecond,
			Write:    200 * Microsecond,
		},
		Noise:    &NoiseConfig{Period: 10 * Millisecond, Duration: 100 * Microsecond},
		Failures: &FailureConfig{MTBF: 640 * Millisecond, Restart: Millisecond, Kind: RecoverLocal},
		Seed:     16,
		MaxTime:  Time(30 * Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailureEvents) == 0 {
		t.Error("expected failures with this seed")
	}
	if res.SeizedTime["noise"] == 0 {
		t.Error("no noise recorded")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := RunConfig{
		Workload:   "random",
		Ranks:      9,
		Iterations: 10,
		Compute:    Millisecond,
		Jitter:     0.1,
		MsgBytes:   1024,
		Protocol: ProtocolConfig{
			Kind:     ProtoUncoordinated,
			Interval: 5 * Millisecond,
			Write:    100 * Microsecond,
			Offset:   "random",
		},
		Seed: 7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Events != b.Events {
		t.Errorf("runs differ: %v/%v", a.Makespan, b.Makespan)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Workload: "nope", Ranks: 4, Iterations: 1, Compute: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(RunConfig{Workload: "ep", Ranks: 0, Iterations: 1, Compute: 1}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := Run(RunConfig{Workload: "ep", Ranks: 2, Iterations: 2, Compute: 1,
		Noise: &NoiseConfig{}}); err == nil {
		t.Error("bad noise accepted")
	}
	if _, err := Run(RunConfig{Workload: "ep", Ranks: 2, Iterations: 2, Compute: 1,
		Failures: &FailureConfig{}}); err == nil {
		t.Error("bad failures accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) < 8 {
		t.Fatalf("workloads: %v", ws)
	}
	for _, w := range ws {
		if DescribeWorkload(w) == "" {
			t.Errorf("%s undescribed", w)
		}
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder(2)
	b.Send(0, 1, 0, 64)
	b.Recv(1, 0, 0, 64)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(SimConfig{Net: DefaultNetwork(), Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.AppMessages != 1 {
		t.Errorf("messages = %d", res.Metrics.AppMessages)
	}
}

func TestRunExtendedProtocolKinds(t *testing.T) {
	base := RunConfig{
		Workload:   "stencil2d",
		Ranks:      16,
		Iterations: 20,
		Compute:    Millisecond,
		MsgBytes:   2048,
		Seed:       3,
	}
	kinds := []ProtocolConfig{
		{Kind: ProtoNonBlocking, Interval: 10 * Millisecond, Write: Millisecond,
			Window: 4 * Millisecond, Slowdown: 1.25},
		{Kind: ProtoPartner, Interval: 10 * Millisecond, Write: 100 * Microsecond,
			CkptBytes: 1 << 20},
		{Kind: ProtoUncoordinated, Interval: 10 * Millisecond, Write: Millisecond,
			Incremental: IncrementalParams{FullEvery: 4, Fraction: 0.25}},
	}
	for i, pc := range kinds {
		cfg := base
		cfg.Protocol = pc
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("kind %d (%q): %v", i, pc.Kind, err)
			continue
		}
		if res.Protocol.Stats().Writes == 0 {
			t.Errorf("kind %d (%q): no writes", i, pc.Kind)
		}
	}
	// Invalid extended configs propagate errors.
	cfg := base
	cfg.Protocol = ProtocolConfig{Kind: ProtoNonBlocking, Interval: Millisecond,
		Write: Millisecond, Window: 0, Slowdown: 1}
	if _, err := Run(cfg); err == nil {
		t.Error("bad non-blocking window accepted")
	}
	cfg.Protocol = ProtocolConfig{Kind: ProtoPartner, Interval: Millisecond}
	if _, err := Run(cfg); err == nil {
		t.Error("partner without image size accepted")
	}
}

func TestCriticalPathFacade(t *testing.T) {
	b := NewBuilder(2)
	s := b.Seq(0)
	s.Calc(Millisecond)
	s.Send(1, 0, 64)
	b.Seq(1).Recv(0, 0, 64)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d, path := CriticalPath(prog, DefaultNetwork())
	if d < Millisecond || len(path) == 0 {
		t.Errorf("critical path = %v over %d ops", d, len(path))
	}
}

func TestEngineTraceHook(t *testing.T) {
	b := NewBuilder(2)
	s0 := b.Seq(0)
	s0.Calc(Millisecond)
	s0.Send(1, 0, 64)
	b.Seq(1).Recv(0, 0, 64)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var events []TraceEvent
	eng, err := NewEngine(SimConfig{
		Net:     DefaultNetwork(),
		Program: prog,
		Trace:   func(ev TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	widened := 0
	for _, ev := range events {
		if ev.End < ev.Start {
			t.Errorf("trace event ends before it starts: %+v", ev)
		}
		if ev.Type != TraceCPU {
			widened++
			continue
		}
		kinds[ev.Kind]++
	}
	if kinds["calc"] != 1 || kinds["send"] != 1 || kinds["recv"] != 1 {
		t.Errorf("CPU trace kinds = %v", kinds)
	}
	if widened == 0 {
		t.Error("widened trace carried no non-CPU events (grants, NIC, message lifecycle)")
	}
}

// Every protocol constructor the facade exports must build its protocol
// and drive a small simulation to completion as an engine agent.
func TestProtocolConstructors(t *testing.T) {
	p := CheckpointParams{Interval: 10 * Millisecond, Write: Millisecond}
	lg := LogParams{Alpha: Microsecond, BetaNsPerByte: 0.01}
	ctors := []struct {
		name  string
		build func() (Protocol, error)
	}{
		{"coordinated", func() (Protocol, error) { return NewCoordinated(p) }},
		{"uncoordinated", func() (Protocol, error) { return NewUncoordinated(p, "staggered", lg) }},
		{"hierarchical", func() (Protocol, error) { return NewHierarchical(p, 4, lg) }},
		{"non-blocking", func() (Protocol, error) {
			return NewNonBlockingCoordinated(NonBlockingParams{
				Params: p, Window: 2 * Millisecond, Slowdown: 1.25})
		}},
		{"partner", func() (Protocol, error) {
			return NewPartnerProtocol(PartnerParams{
				Interval: 10 * Millisecond, SerializeTime: Millisecond / 10, CkptBytes: 1 << 16})
		}},
		{"two-level", func() (Protocol, error) {
			return NewTwoLevelProtocol(TwoLevelParams{
				LocalInterval: 5 * Millisecond, LocalWrite: Millisecond / 2,
				GlobalInterval: 20 * Millisecond, GlobalWrite: 2 * Millisecond})
		}},
		{"incremental", func() (Protocol, error) {
			return NewUncoordinatedIncremental(p, "aligned", lg,
				IncrementalParams{FullEvery: 4, Fraction: 0.25})
		}},
	}
	for _, tc := range ctors {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			proto, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if proto.Name() == "" {
				t.Error("protocol has no name")
			}
			const ranks, iters = 8, 40
			b := NewBuilder(ranks)
			for i := 0; i < ranks; i++ {
				s := b.Seq(i)
				for it := 0; it < iters; it++ {
					s.Calc(Millisecond)
					s.Join(
						s.Fork(KindSend, int32((i+1)%ranks), 0, 4096),
						s.Fork(KindRecv, int32((i-1+ranks)%ranks), 0, 4096),
					)
				}
			}
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(SimConfig{
				Net: DefaultNetwork(), Program: prog, Agents: []Agent{proto}, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan <= 0 {
				t.Errorf("makespan = %v", res.Makespan)
			}
			if proto.Stats().Writes == 0 && proto.Stats().Rounds == 0 {
				t.Errorf("%s never checkpointed in %v", tc.name, Duration(res.Makespan))
			}
		})
	}
	if _, err := NewUncoordinated(p, "sometimes", lg); err == nil {
		t.Error("bad offset policy accepted")
	}
}

// Every collective wrapper must compile into a simulable graph that
// round-trips through the textual GOAL dialect.
func TestCollectiveFacade(t *testing.T) {
	const p = 8
	gens := []struct {
		name  string
		build func(b *Builder) []OpID
	}{
		{"bcast", func(b *Builder) []OpID { return Bcast(b, 0, nil, 0, 64) }},
		{"reduce", func(b *Builder) []OpID { return Reduce(b, 0, nil, 0, 64) }},
		{"allreduce", func(b *Builder) []OpID { return Allreduce(b, nil, 0, 64) }},
		{"barrier", func(b *Builder) []OpID { return Barrier(b, nil, 0) }},
		{"allgather", func(b *Builder) []OpID { return Allgather(b, nil, 0, 64) }},
		{"alltoall", func(b *Builder) []OpID { return Alltoall(b, nil, 0, 64) }},
		{"gather", func(b *Builder) []OpID { return Gather(b, 0, nil, 0, 64) }},
		{"scatter", func(b *Builder) []OpID { return Scatter(b, 0, nil, 0, 64) }},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			b := NewBuilder(p)
			if exits := g.build(b); len(exits) != p {
				t.Fatalf("%d exit ops for %d ranks", len(exits), p)
			}
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseProgram(FormatProgram(prog))
			if err != nil {
				t.Fatalf("GOAL round-trip: %v", err)
			}
			if back.NumRanks != p {
				t.Fatalf("round-trip kept %d ranks", back.NumRanks)
			}
			eng, err := NewEngine(SimConfig{Net: DefaultNetwork(), Program: prog, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan <= 0 {
				t.Errorf("makespan = %v", res.Makespan)
			}
		})
	}
}

// The storage constructors must build working arbiters.
func TestStoreConstructors(t *testing.T) {
	st, err := NewStore(StorageParams{AggregateBytesPerSec: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("nil store")
	}
	if UnlimitedStore() == nil {
		t.Fatal("nil unlimited store")
	}
	if _, err := NewStore(StorageParams{AggregateBytesPerSec: -1}); err == nil {
		t.Error("negative bandwidth accepted")
	}
}
