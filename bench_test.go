package checkpointsim

// One benchmark per reproduction experiment (see DESIGN.md §4). Each runs
// the corresponding experiment in Quick mode; `go test -bench . -benchmem`
// regenerates every table, and `cmd/sweep` prints the full-scale versions.

import (
	"testing"

	"checkpointsim/internal/exp"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	// Jobs 0 = all cores: benches exercise the same parallel sweep path
	// cmd/sweep uses (results are identical at any worker count).
	benchExperimentJobs(b, id, 0)
}

func benchExperimentJobs(b *testing.B, id string, jobs int) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := exp.DefaultOptions()
	o.Quick = true
	o.Jobs = jobs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Validation(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Propagation(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3Coordination(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4WeakScaling(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Logging(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Interval(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Recovery(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Crossover(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Stagger(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Hierarchical(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11NonBlocking(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12Partner(b *testing.B)      { benchExperiment(b, "E12") }
func BenchmarkE13Straggler(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14Fabric(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Resonance(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16TwoLevel(b *testing.B)     { benchExperiment(b, "E16") }
func BenchmarkE17Contention(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18Replication(b *testing.B)  { benchExperiment(b, "E18") }
func BenchmarkE19CIC(b *testing.B)          { benchExperiment(b, "E19") }

// Serial counterparts for the heaviest sweeps: benchstat these against the
// parallel versions above to measure the worker-pool speedup on your box
// (identical tables either way — only wall-clock differs).
func BenchmarkE4WeakScalingSerial(b *testing.B) { benchExperimentJobs(b, "E4", 1) }
func BenchmarkE8CrossoverSerial(b *testing.B)   { benchExperimentJobs(b, "E8", 1) }

// BenchmarkEngineThroughput measures raw simulator speed: events per second
// on a communication-heavy workload, reported as time per full run.
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Run(RunConfig{
			Workload:   "stencil2d",
			Ranks:      64,
			Iterations: 20,
			Compute:    Millisecond,
			MsgBytes:   4096,
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Events), "events/run")
	}
}

// BenchmarkProtocolOverhead measures the cost of attaching the coordinated
// protocol relative to BenchmarkEngineThroughput's bare run.
func BenchmarkProtocolOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(RunConfig{
			Workload:   "stencil2d",
			Ranks:      64,
			Iterations: 20,
			Compute:    Millisecond,
			MsgBytes:   4096,
			Protocol: ProtocolConfig{
				Kind:     ProtoCoordinated,
				Interval: 5 * Millisecond,
				Write:    500 * Microsecond,
			},
			Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
